#include "net/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sgmlqdb::net {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Integer(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(i);
  v.integer_ = i;
  v.is_integer_ = true;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue v;
    SGMLQDB_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth_) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SGMLQDB_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Err("invalid literal");
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      SGMLQDB_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      SGMLQDB_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      SGMLQDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      SGMLQDB_RETURN_IF_ERROR(Expect('}'));
      break;
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      SGMLQDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      SGMLQDB_RETURN_IF_ERROR(Expect(']'));
      break;
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    SGMLQDB_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Err("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Err("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          SGMLQDB_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Err("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            SGMLQDB_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) return Err("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    bool integral = true;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("invalid number");
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error).
    const bool leading_zero = text_[pos_] == '0';
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u)) {
      return Err("leading zero in number");
    }
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Integer(static_cast<int64_t>(v));
        return Status::OK();
      }
    }
    *out = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonValue::Serialize() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      if (is_integer_) return std::to_string(integer_);
      if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        return buf;
      }
      return "null";  // JSON has no Inf/NaN
    }
    case Kind::kString:
      return JsonQuote(string_);
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Serialize();
      }
      out.push_back(']');
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += JsonQuote(members_[i].first);
        out.push_back(':');
        out += members_[i].second.Serialize();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

}  // namespace sgmlqdb::net
