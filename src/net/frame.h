// The compact length-prefixed binary protocol for high-QPS clients.
//
// Every frame is
//
//   u32  payload length (little-endian, counts opcode + req_id + body)
//   u8   opcode
//   u32  request id (echoed verbatim in the reply, so clients may
//        pipeline requests and match replies out of order)
//   ...  body (opcode-specific, see wire_format.h)
//
// Client -> server opcodes:
//   1 kQuery    one-shot OQL statement
//   2 kPrepare  register a statement id -> text binding on this
//               connection (prepare-once)
//   3 kExecute  execute a prepared statement id (execute-many; the
//               compiled plan comes from the service's PlanCache)
//   4 kPing     liveness probe
// Server -> client:
//   0x81 kReply u8 status code (base/status.h StatusCode), rest: body
//
// A frame longer than `max_frame_bytes` or shorter than the 5-byte
// payload header is a protocol error: the parser poisons itself and
// the connection answers one error reply and closes (a corrupt length
// prefix cannot be resynchronized).

#ifndef SGMLQDB_NET_FRAME_H_
#define SGMLQDB_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sgmlqdb::net {

enum class Opcode : uint8_t {
  kQuery = 1,
  kPrepare = 2,
  kExecute = 3,
  kPing = 4,
  kReply = 0x81,
};

struct Frame {
  uint8_t opcode = 0;
  uint32_t req_id = 0;
  std::string body;
};

/// Minimum payload: opcode byte + request id.
inline constexpr size_t kFrameHeaderBytes = 5;

class FrameParser {
 public:
  enum class Outcome { kNeedMore, kFrame, kError };

  explicit FrameParser(size_t max_frame_bytes = 16 * 1024 * 1024)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view data);

  /// Extracts the next complete frame. After kError the parser is
  /// poisoned (see error()); the stream cannot continue.
  Outcome Next(Frame* out);

  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Outcome Fail(std::string message);

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

/// Encodes one frame (prepends the length prefix).
std::string EncodeFrame(Opcode opcode, uint32_t req_id,
                        std::string_view body);

// Little-endian integer append/read helpers shared with wire_format.
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
uint16_t ReadU16(const char* p);
uint32_t ReadU32(const char* p);
uint64_t ReadU64(const char* p);

}  // namespace sgmlqdb::net

#endif  // SGMLQDB_NET_FRAME_H_
