#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace sgmlqdb::net {

namespace {

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsTokenChar(char c) {
  // RFC 7230 tchar.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (IEquals(k, name)) return v;
  }
  return {};
}

std::string_view HttpRequest::Path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

void HttpRequestParser::Append(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

void HttpRequestParser::Compact() {
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 65536)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

HttpRequestParser::Outcome HttpRequestParser::Fail(int status,
                                                   std::string message) {
  poisoned_ = true;
  http_status_ = status;
  error_ = std::move(message);
  return Outcome::kError;
}

HttpRequestParser::Outcome HttpRequestParser::Next(HttpRequest* out) {
  if (poisoned_) return Outcome::kError;
  std::string_view rest(buffer_);
  rest.remove_prefix(consumed_);
  // RFC 7230 allows (and robust servers skip) blank lines between
  // pipelined requests.
  size_t skip = 0;
  while (skip < rest.size() && (rest[skip] == '\r' || rest[skip] == '\n')) {
    ++skip;
  }
  rest.remove_prefix(skip);
  size_t header_end = rest.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (rest.size() > limits_.max_header_bytes) {
      return Fail(431, "request header section exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return Outcome::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail(431, "request header section exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }
  std::string_view head = rest.substr(0, header_end);
  // Request line.
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    return Fail(400, "malformed request line");
  }
  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  for (char c : req.method) {
    if (!IsTokenChar(c)) return Fail(400, "malformed method token");
  }
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    req.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    req.version_minor = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    return Fail(505, "unsupported HTTP version: " + std::string(version));
  } else {
    return Fail(400, "malformed request line version");
  }
  // Header fields.
  std::string_view headers_block =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!headers_block.empty()) {
    size_t eol = headers_block.find("\r\n");
    std::string_view line = eol == std::string_view::npos
                                ? headers_block
                                : headers_block.substr(0, eol);
    headers_block = eol == std::string_view::npos
                        ? std::string_view{}
                        : headers_block.substr(eol + 2);
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return Fail(400, "obsolete header line folding");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header field");
    }
    std::string_view name = line.substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) return Fail(400, "malformed header field name");
    }
    req.headers.emplace_back(std::string(name),
                             std::string(Trim(line.substr(colon + 1))));
  }
  // Body framing.
  if (!req.Header("Transfer-Encoding").empty()) {
    return Fail(501, "chunked request bodies are not supported");
  }
  size_t content_length = 0;
  std::string_view cl = req.Header("Content-Length");
  if (!cl.empty()) {
    if (cl.find_first_not_of("0123456789") != std::string_view::npos ||
        cl.size() > 12) {
      return Fail(400, "malformed Content-Length");
    }
    content_length = 0;
    for (char c : cl) content_length = content_length * 10 + (c - '0');
    if (content_length > limits_.max_body_bytes) {
      return Fail(413, "request body of " + std::string(cl) +
                           " bytes exceeds limit of " +
                           std::to_string(limits_.max_body_bytes));
    }
  }
  size_t body_start = header_end + 4;
  if (rest.size() < body_start + content_length) return Outcome::kNeedMore;
  req.body = std::string(rest.substr(body_start, content_length));
  // Persistence.
  std::string_view conn = req.Header("Connection");
  if (req.version_minor == 0) {
    req.keep_alive = IEquals(conn, "keep-alive");
  } else {
    req.keep_alive = !IEquals(conn, "close");
  }
  consumed_ += skip + body_start + content_length;
  Compact();
  *out = std::move(req);
  return Outcome::kRequest;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Error";
  }
}

std::string FormatHttpResponse(int status, std::string_view reason,
                               std::string_view content_type,
                               std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out.append(reason.data(), reason.size());
  out += "\r\nContent-Type: ";
  out.append(content_type.data(), content_type.size());
  out += "\r\nContent-Length: " + std::to_string(body.size());
  if (!keep_alive) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  out.append(body.data(), body.size());
  return out;
}

}  // namespace sgmlqdb::net
