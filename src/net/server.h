// The network serving layer: one epoll thread accepting and
// multiplexing connections over two front ends —
//
//   * an HTTP/1.1+JSON port:  POST /query, POST /ingest, GET /stats,
//     GET /healthz (keep-alive, incremental request parsing),
//   * a binary port speaking the frame.h length-prefixed protocol
//     (pipelined query / prepare-once / execute-many).
//
// Statement execution never happens on the IO thread: requests are
// handed to the QueryService's worker pool (SubmitAsync) and the
// completion is posted back to the event loop, which owns all
// connection state (single-threaded, no per-connection locks).
// Ingest batches run on a dedicated writer thread (publishes are
// single-writer anyway) so an SGML parse never stalls the IO loop.
//
// Robustness wiring:
//   * Backpressure — admission-control rejections (Status::
//     kUnavailable) answer 503 / a BUSY reply instead of queueing,
//     and a connection with too many in-flight statements or too much
//     unsent output has EPOLLIN disarmed until it drains: a slow or
//     flooding client throttles itself, never the server's memory.
//   * Cancellation — closing a connection cancels its in-flight
//     statements through QueryService::Cancel -> ExecGuard, and a
//     per-request timeout_ms rides the existing deadline watchdog.
//   * Malformed input — oversized / unparseable requests and garbage
//     frames answer one structured error and close; the parsers are
//     bounded, so no input can buffer unboundedly.

#ifndef SGMLQDB_NET_SERVER_H_
#define SGMLQDB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "base/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "service/query_service.h"

namespace sgmlqdb::net {

struct ServerOptions {
  /// Numeric IPv4 bind address.
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral (read back with http_port()/binary_port()).
  uint16_t http_port = 0;
  uint16_t binary_port = 0;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Per-connection pipelined-statement cap (binary protocol); above
  /// it the connection's reads pause until replies drain.
  size_t max_inflight_per_conn = 64;
  /// Unsent output above this pauses reads (a client that stops
  /// reading its responses stops being read from).
  size_t max_output_buffer_bytes = 4 * 1024 * 1024;
  /// HTTP body / header limits (http.h) and binary frame limit.
  size_t max_body_bytes = 16 * 1024 * 1024;
  size_t max_header_bytes = 16 * 1024;
  size_t max_frame_bytes = 16 * 1024 * 1024;
  /// Prepared statements per binary connection.
  size_t max_prepared_per_conn = 256;
  /// Applied when a request carries no timeout of its own (0 = none).
  uint64_t default_timeout_ms = 0;
};

/// Counters owned by the IO layer (the query-side taxonomy lives in
/// ServiceStats). Snapshot() is safe from any thread.
class ServerStats {
 public:
  struct Snapshot {
    uint64_t accepted = 0;
    uint64_t over_capacity = 0;
    uint64_t active = 0;
    uint64_t http_requests = 0;
    uint64_t binary_requests = 0;
    uint64_t malformed = 0;
    uint64_t busy_rejections = 0;
    uint64_t cancelled_on_disconnect = 0;
    uint64_t read_pauses = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  Snapshot Get() const;

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> over_capacity{0};
  std::atomic<uint64_t> active{0};
  std::atomic<uint64_t> http_requests{0};
  std::atomic<uint64_t> binary_requests{0};
  std::atomic<uint64_t> malformed{0};
  std::atomic<uint64_t> busy_rejections{0};
  std::atomic<uint64_t> cancelled_on_disconnect{0};
  std::atomic<uint64_t> read_pauses{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
};

class Server {
 public:
  Server(service::QueryService& service, const ServerOptions& options);

  /// An unattached server: binds and answers immediately, but every
  /// query/ingest (and /healthz) answers 503 "recovering" until
  /// AttachService flips it ready. This is how a durable daemon binds
  /// its ports *before* startup recovery: liveness is the socket,
  /// readiness is the attach.
  explicit Server(const ServerOptions& options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();  // Stop()

  /// Marks the server ready: subsequent requests are served by
  /// `service` (which must outlive the server). One-shot.
  void AttachService(service::QueryService& service);
  bool ready() const { return service_.load() != nullptr; }

  /// Binds both ports and starts the IO and ingest threads.
  Status Start();

  /// Graceful stop, in dependency order: the ingest queue drains
  /// first (an accepted batch gets its WAL fsync and its ack before
  /// any connection dies), then connections close (cancelling
  /// in-flight statements) and the epoll loop tears down. Idempotent.
  void Stop();

  uint16_t http_port() const { return http_port_; }
  uint16_t binary_port() const { return binary_port_; }
  const ServerStats& stats() const { return stats_; }

  /// The GET /stats payload (also handy for tests).
  std::string StatsJson() const;

 private:
  enum class Proto { kHttp, kBinary };

  /// How to format the response of an in-flight statement.
  struct ResponseCtx {
    Proto proto = Proto::kHttp;
    uint32_t req_id = 0;      // binary: echoed request id
    bool keep_alive = true;   // http: persistence after this response
    std::chrono::steady_clock::time_point start{};
  };

  struct Connection {
    uint64_t id = 0;
    Fd sock;
    Proto proto = Proto::kHttp;
    HttpRequestParser http_parser;
    FrameParser frame_parser;
    std::string out;
    size_t out_off = 0;
    uint32_t events = 0;      // currently armed epoll mask
    bool close_after_flush = false;
    bool http_busy = false;   // one HTTP request in flight at a time
    size_t inflight = 0;      // dispatched, unanswered statements
    /// Service query ids to cancel if this connection dies.
    std::unordered_set<uint64_t> inflight_queries;
    std::map<uint32_t, QueryRequest> prepared;

    Connection(uint64_t id, Fd sock, Proto proto, ServerOptions const& opt);
    size_t out_pending() const { return out.size() - out_off; }
  };

  struct IngestJob {
    uint64_t conn_id = 0;
    ResponseCtx ctx;
    IngestRequest req;
  };

  // All private methods below run on the loop thread unless noted.
  void OnAccept(int listen_fd, Proto proto);
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void HandleReadable(Connection& c);
  void ProcessHttp(Connection& c);
  void ProcessBinary(Connection& c);
  /// Returns false when the connection was destroyed.
  bool DispatchHttp(Connection& c, HttpRequest req);
  bool HandleBinaryFrame(Connection& c, const Frame& frame);
  void SubmitQuery(Connection& c, QueryRequest req, ResponseCtx ctx);
  void OnQueryDone(uint64_t conn_id, uint64_t query_id, ResponseCtx ctx,
                   Result<om::Value> result);
  void OnIngestDone(uint64_t conn_id, ResponseCtx ctx,
                    Result<uint64_t> epoch);
  bool QueueHttpResponse(Connection& c, int status,
                         std::string_view content_type,
                         std::string_view body, bool keep_alive);
  bool QueueOutput(Connection& c, std::string_view bytes);
  bool FlushOutput(Connection& c);
  void UpdateInterest(Connection& c);
  void DestroyConnection(uint64_t conn_id);
  void CloseAll();
  void IngestLoop();  // runs on ingest_thread_

  /// Null until AttachService: the readiness gate. Written once by
  /// the recovering thread, read by the loop/ingest threads.
  std::atomic<service::QueryService*> service_{nullptr};
  const ServerOptions options_;
  EventLoop loop_;
  Fd http_listen_;
  Fd binary_listen_;
  uint16_t http_port_ = 0;
  uint16_t binary_port_ = 0;
  ServerStats stats_;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;

  /// Completions handed to the query pool but not yet re-posted to the
  /// loop; Stop() waits for this to reach zero before returning, so no
  /// worker ever touches a dead Server.
  std::atomic<uint64_t> pending_callbacks_{0};
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;

  std::thread ingest_thread_;
  std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::deque<IngestJob> ingest_queue_;
  bool ingest_stop_ = false;
};

}  // namespace sgmlqdb::net

#endif  // SGMLQDB_NET_SERVER_H_
