#include "calculus/formula.h"

namespace sgmlqdb::calculus {

FormulaPtr Formula::Eq(DataTermPtr lhs, DataTermPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kEq;
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::In(DataTermPtr elem, DataTermPtr coll) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kIn;
  f->terms_ = {std::move(elem), std::move(coll)};
  return f;
}

FormulaPtr Formula::Subset(DataTermPtr lhs, DataTermPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kSubset;
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::Less(DataTermPtr lhs, DataTermPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kLess;
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::PathPred(DataTermPtr base, PathTerm path) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kPathPred;
  f->terms_ = {std::move(base)};
  f->path_ = std::move(path);
  return f;
}

FormulaPtr Formula::Interpreted(std::string predicate,
                                std::vector<DataTermPtr> args) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kInterpreted;
  f->symbol_ = std::move(predicate);
  f->terms_ = std::move(args);
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> fs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(fs);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> fs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(fs);
  return f;
}

FormulaPtr Formula::Not(FormulaPtr inner) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kNot;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr Formula::Exists(std::vector<Variable> vars, FormulaPtr inner) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kExists;
  f->variables_ = std::move(vars);
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr Formula::ForAll(std::vector<Variable> vars, FormulaPtr inner) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kForAll;
  f->variables_ = std::move(vars);
  f->children_ = {std::move(inner)};
  return f;
}

void CollectVariables(const PathTerm& path, std::set<Variable>* out) {
  for (const PathComponent& c : path.components()) {
    switch (c.kind) {
      case PathComponent::Kind::kVar:
        out->insert(PathVar(c.var));
        break;
      case PathComponent::Kind::kIndexVar:
      case PathComponent::Kind::kCapture:
      case PathComponent::Kind::kSetCapture:
        out->insert(DataVar(c.var));
        break;
      case PathComponent::Kind::kAttrSel:
        if (c.attr.is_variable) out->insert(AttrVar(c.attr.name));
        break;
      default:
        break;
    }
  }
}

void CollectVariables(const DataTerm& term, std::set<Variable>* out) {
  switch (term.kind()) {
    case DataTerm::Kind::kVariable:
      out->insert(DataVar(term.var_name()));
      break;
    case DataTerm::Kind::kConstant:
    case DataTerm::Kind::kName:
      break;
    case DataTerm::Kind::kTupleCons:
      for (const auto& [attr, t] : term.tuple_fields()) {
        if (attr.is_variable) out->insert(AttrVar(attr.name));
        CollectVariables(*t, out);
      }
      break;
    case DataTerm::Kind::kListCons:
    case DataTerm::Kind::kSetCons:
      for (const DataTermPtr& t : term.children()) {
        CollectVariables(*t, out);
      }
      break;
    case DataTerm::Kind::kFunction:
      if (term.function_name() == "__path_value") {
        CollectVariables(term.path(), out);
      } else if (term.function_name() == "__attr_value") {
        if (term.attr().is_variable) out->insert(AttrVar(term.attr().name));
      } else {
        for (const DataTermPtr& t : term.children()) {
          CollectVariables(*t, out);
        }
      }
      break;
    case DataTerm::Kind::kPathApply:
      CollectVariables(*term.base(), out);
      CollectVariables(term.path(), out);
      break;
    case DataTerm::Kind::kSubquery: {
      // Free variables of the subquery minus its own head.
      std::set<Variable> inner = term.subquery()->body->FreeVariables();
      for (const Variable& h : term.subquery()->head) inner.erase(h);
      out->insert(inner.begin(), inner.end());
      break;
    }
  }
}

void CollectRootNames(const DataTerm& term, std::set<std::string>* out) {
  switch (term.kind()) {
    case DataTerm::Kind::kName:
      out->insert(term.root_name());
      break;
    case DataTerm::Kind::kVariable:
    case DataTerm::Kind::kConstant:
      break;
    case DataTerm::Kind::kTupleCons:
      for (const auto& [attr, t] : term.tuple_fields()) {
        CollectRootNames(*t, out);
      }
      break;
    case DataTerm::Kind::kListCons:
    case DataTerm::Kind::kSetCons:
    case DataTerm::Kind::kFunction:
      for (const DataTermPtr& t : term.children()) {
        CollectRootNames(*t, out);
      }
      break;
    case DataTerm::Kind::kPathApply:
      CollectRootNames(*term.base(), out);
      break;
    case DataTerm::Kind::kSubquery:
      CollectRootNames(*term.subquery(), out);
      break;
  }
}

void CollectRootNames(const Formula& formula, std::set<std::string>* out) {
  for (const DataTermPtr& t : formula.terms()) CollectRootNames(*t, out);
  for (const FormulaPtr& c : formula.children()) CollectRootNames(*c, out);
}

void CollectRootNames(const Query& query, std::set<std::string>* out) {
  if (query.body != nullptr) CollectRootNames(*query.body, out);
}

std::set<Variable> Formula::FreeVariables() const {
  std::set<Variable> out;
  for (const DataTermPtr& t : terms_) CollectVariables(*t, &out);
  if (kind_ == Kind::kPathPred) CollectVariables(path_, &out);
  for (const FormulaPtr& c : children_) {
    std::set<Variable> inner = c->FreeVariables();
    out.insert(inner.begin(), inner.end());
  }
  for (const Variable& v : variables_) out.erase(v);
  return out;
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kEq:
      return terms_[0]->ToString() + " = " + terms_[1]->ToString();
    case Kind::kIn:
      return terms_[0]->ToString() + " in " + terms_[1]->ToString();
    case Kind::kSubset:
      return terms_[0]->ToString() + " ⊆ " + terms_[1]->ToString();
    case Kind::kLess:
      return terms_[0]->ToString() + " < " + terms_[1]->ToString();
    case Kind::kPathPred:
      return "<" + terms_[0]->ToString() + " " + path_.ToString() + ">";
    case Kind::kInterpreted: {
      std::string out = symbol_ + "(";
      for (size_t i = 0; i < terms_.size(); ++i) {
        if (i > 0) out += ", ";
        out += terms_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      const char* sep = kind_ == Kind::kAnd ? " ∧ " : " ∨ ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "¬" + children_[0]->ToString();
    case Kind::kExists:
    case Kind::kForAll: {
      std::string out = kind_ == Kind::kExists ? "∃" : "∀";
      for (size_t i = 0; i < variables_.size(); ++i) {
        if (i > 0) out += ",";
        out += variables_[i].name;
      }
      return out + "(" + children_[0]->ToString() + ")";
    }
  }
  return "?";
}

std::string Query::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].name;
  }
  return out + " | " + body->ToString() + "}";
}

}  // namespace sgmlqdb::calculus
