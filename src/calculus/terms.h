// The many-sorted calculus of paper §5.2: data, path and attribute
// sorts; attribute, path and data terms; atoms (=, in, subseteq, <,
// path predicates, interpreted predicates); and formulas closed under
// and/or/not and quantification over the three sorts.
//
// Path terms are sequences of components:
//   P          a path variable
//   ->         dereference
//   .a  /  .A  attribute selection (constant or attribute variable)
//   [3] / [I]  list index (constant or integer data variable)
//   (X)        value capture: X denotes the value reached here
//   {X}        set-element choice: X ranges over the elements
// Concatenation PQ is concatenation of the component sequences.

#ifndef SGMLQDB_CALCULUS_TERMS_H_
#define SGMLQDB_CALCULUS_TERMS_H_

#include <memory>
#include <string>
#include <vector>

#include "om/value.h"

namespace sgmlqdb::calculus {

enum class Sort { kData, kPath, kAttr };

/// A sorted variable. Paper convention: X,Y,Z data; P,Q,R path;
/// A,B,C attribute.
struct Variable {
  Sort sort;
  std::string name;

  friend bool operator==(const Variable& a, const Variable& b) {
    return a.sort == b.sort && a.name == b.name;
  }
  friend bool operator<(const Variable& a, const Variable& b) {
    if (a.sort != b.sort) return a.sort < b.sort;
    return a.name < b.name;
  }
};

inline Variable DataVar(std::string name) {
  return Variable{Sort::kData, std::move(name)};
}
inline Variable PathVar(std::string name) {
  return Variable{Sort::kPath, std::move(name)};
}
inline Variable AttrVar(std::string name) {
  return Variable{Sort::kAttr, std::move(name)};
}

/// An attribute term: a constant attribute name or an attribute
/// variable.
struct AttrTerm {
  bool is_variable = false;
  std::string name;  // attribute name, or variable name

  static AttrTerm Name(std::string n) { return AttrTerm{false, std::move(n)}; }
  static AttrTerm Var(std::string v) { return AttrTerm{true, std::move(v)}; }

  std::string ToString() const { return is_variable ? name : "." + name; }
};

/// One component of a path term.
struct PathComponent {
  enum class Kind {
    kVar,         // path variable
    kDeref,       // ->
    kAttrSel,     // .a / .A
    kIndexConst,  // [3]
    kIndexVar,    // [I]   (I is a data variable over integers)
    kCapture,     // (X)
    kSetCapture,  // {X}
  };

  Kind kind;
  std::string var;     // kVar / kIndexVar / kCapture / kSetCapture
  AttrTerm attr;       // kAttrSel
  int64_t index = 0;   // kIndexConst

  std::string ToString() const;
};

/// A path term: a sequence of components (epsilon = empty sequence).
class PathTerm {
 public:
  PathTerm() = default;

  static PathTerm Epsilon() { return PathTerm(); }
  static PathTerm Var(std::string name);
  static PathTerm Deref();
  static PathTerm Attr(std::string name);
  static PathTerm AttrVariable(std::string var);
  static PathTerm Index(int64_t i);
  static PathTerm IndexVariable(std::string var);
  static PathTerm Capture(std::string data_var);
  static PathTerm SetCapture(std::string data_var);

  /// Concatenation (paper: PQ).
  PathTerm operator+(const PathTerm& other) const;

  const std::vector<PathComponent>& components() const { return components_; }
  bool empty() const { return components_.empty(); }

  std::string ToString() const;

 private:
  std::vector<PathComponent> components_;
};

class DataTerm;
using DataTermPtr = std::shared_ptr<const DataTerm>;
struct Query;  // defined in calculus/formula.h

/// A data term (paper §5.2).
class DataTerm {
 public:
  enum class Kind {
    kVariable,   // data variable
    kConstant,   // atomic value (nil, int, string, ... or an oid)
    kName,       // persistence root
    kTupleCons,  // [A1: t1, ..., An: tn]
    kListCons,   // [t1, ..., tn]
    kSetCons,    // {t1, ..., tn}
    kFunction,   // interpreted function application
    kPathApply,  // t P  (navigate from t along P)
    kSubquery,   // nested query used as a term ({X | phi} in §5.2)
  };

  static DataTermPtr Var(std::string name);
  static DataTermPtr Const(om::Value v);
  static DataTermPtr Name(std::string name);
  static DataTermPtr TupleCons(
      std::vector<std::pair<AttrTerm, DataTermPtr>> fields);
  static DataTermPtr ListCons(std::vector<DataTermPtr> elems);
  static DataTermPtr SetCons(std::vector<DataTermPtr> elems);
  /// Interpreted function over data arguments (length, name, first,
  /// count, text, set_to_list, ...). Path/attr terms are passed by
  /// wrapping: PathAsData / AttrAsData below.
  static DataTermPtr Function(std::string function,
                              std::vector<DataTermPtr> args);
  static DataTermPtr PathApply(DataTermPtr base, PathTerm path);
  /// A path term used where data is expected (paths are first-class:
  /// the term denotes the path's value encoding).
  static DataTermPtr PathAsData(PathTerm path);
  /// An attribute term used as data (denotes the attribute name
  /// string; the paper's name(A)).
  static DataTermPtr AttrAsData(AttrTerm attr);
  /// A nested query used as a term ({X | phi}; §5.2 "nesting of
  /// queries in a calculus a la [3]"). Denotes the query's result set.
  static DataTermPtr Subquery(std::shared_ptr<const Query> query);

  Kind kind() const { return kind_; }
  const std::string& var_name() const { return symbol_; }
  const std::string& root_name() const { return symbol_; }
  const std::string& function_name() const { return symbol_; }
  const om::Value& constant() const { return constant_; }
  const std::vector<std::pair<AttrTerm, DataTermPtr>>& tuple_fields() const {
    return tuple_fields_;
  }
  const std::vector<DataTermPtr>& children() const { return children_; }
  const DataTermPtr& base() const { return children_[0]; }
  const PathTerm& path() const { return path_; }
  const AttrTerm& attr() const { return attr_; }
  const std::shared_ptr<const Query>& subquery() const { return subquery_; }

  std::string ToString() const;

 private:
  DataTerm() = default;

  Kind kind_ = Kind::kConstant;
  std::string symbol_;
  om::Value constant_;
  std::vector<std::pair<AttrTerm, DataTermPtr>> tuple_fields_;
  std::vector<DataTermPtr> children_;
  PathTerm path_;
  AttrTerm attr_;
  std::shared_ptr<const Query> subquery_;
};

}  // namespace sgmlqdb::calculus

#endif  // SGMLQDB_CALCULUS_TERMS_H_
