#include "calculus/terms.h"

namespace sgmlqdb::calculus {

std::string PathComponent::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return " " + var;
    case Kind::kDeref:
      return "->";
    case Kind::kAttrSel:
      return attr.is_variable ? "." + attr.name : "." + attr.name;
    case Kind::kIndexConst:
      return "[" + std::to_string(index) + "]";
    case Kind::kIndexVar:
      return "[" + var + "]";
    case Kind::kCapture:
      return "(" + var + ")";
    case Kind::kSetCapture:
      return "{" + var + "}";
  }
  return "?";
}

PathTerm PathTerm::Var(std::string name) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kVar;
  c.var = std::move(name);
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::Deref() {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kDeref;
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::Attr(std::string name) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kAttrSel;
  c.attr = AttrTerm::Name(std::move(name));
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::AttrVariable(std::string var) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kAttrSel;
  c.attr = AttrTerm::Var(std::move(var));
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::Index(int64_t i) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kIndexConst;
  c.index = i;
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::IndexVariable(std::string var) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kIndexVar;
  c.var = std::move(var);
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::Capture(std::string data_var) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kCapture;
  c.var = std::move(data_var);
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::SetCapture(std::string data_var) {
  PathTerm p;
  PathComponent c;
  c.kind = PathComponent::Kind::kSetCapture;
  c.var = std::move(data_var);
  p.components_.push_back(std::move(c));
  return p;
}

PathTerm PathTerm::operator+(const PathTerm& other) const {
  PathTerm p;
  p.components_ = components_;
  p.components_.insert(p.components_.end(), other.components_.begin(),
                       other.components_.end());
  return p;
}

std::string PathTerm::ToString() const {
  if (components_.empty()) return "ε";
  std::string out;
  for (const PathComponent& c : components_) out += c.ToString();
  return out;
}

DataTermPtr DataTerm::Var(std::string name) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kVariable;
  t->symbol_ = std::move(name);
  return t;
}

DataTermPtr DataTerm::Const(om::Value v) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kConstant;
  t->constant_ = std::move(v);
  return t;
}

DataTermPtr DataTerm::Name(std::string name) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kName;
  t->symbol_ = std::move(name);
  return t;
}

DataTermPtr DataTerm::TupleCons(
    std::vector<std::pair<AttrTerm, DataTermPtr>> fields) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kTupleCons;
  t->tuple_fields_ = std::move(fields);
  return t;
}

DataTermPtr DataTerm::ListCons(std::vector<DataTermPtr> elems) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kListCons;
  t->children_ = std::move(elems);
  return t;
}

DataTermPtr DataTerm::SetCons(std::vector<DataTermPtr> elems) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kSetCons;
  t->children_ = std::move(elems);
  return t;
}

DataTermPtr DataTerm::Function(std::string function,
                               std::vector<DataTermPtr> args) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kFunction;
  t->symbol_ = std::move(function);
  t->children_ = std::move(args);
  return t;
}

DataTermPtr DataTerm::PathApply(DataTermPtr base, PathTerm path) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kPathApply;
  t->children_ = {std::move(base)};
  t->path_ = std::move(path);
  return t;
}

DataTermPtr DataTerm::PathAsData(PathTerm path) {
  // Encoded as PathApply over a marker-free nil base would be
  // ambiguous; use a dedicated function name over an empty child list
  // with the path stored alongside.
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kFunction;
  t->symbol_ = "__path_value";
  t->path_ = std::move(path);
  return t;
}

DataTermPtr DataTerm::AttrAsData(AttrTerm attr) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kFunction;
  t->symbol_ = "__attr_value";
  t->attr_ = std::move(attr);
  return t;
}

DataTermPtr DataTerm::Subquery(std::shared_ptr<const Query> query) {
  auto t = std::shared_ptr<DataTerm>(new DataTerm());
  t->kind_ = Kind::kSubquery;
  t->subquery_ = std::move(query);
  return t;
}

std::string DataTerm::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return symbol_;
    case Kind::kConstant:
      return constant_.ToString();
    case Kind::kName:
      return symbol_;
    case Kind::kTupleCons: {
      std::string out = "[";
      for (size_t i = 0; i < tuple_fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += tuple_fields_[i].first.is_variable
                   ? tuple_fields_[i].first.name
                   : tuple_fields_[i].first.name;
        out += ": " + tuple_fields_[i].second->ToString();
      }
      return out + "]";
    }
    case Kind::kListCons: {
      std::string out = "[";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + "]";
    }
    case Kind::kSetCons: {
      std::string out = "{";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + "}";
    }
    case Kind::kFunction: {
      if (symbol_ == "__path_value") return path_.ToString();
      if (symbol_ == "__attr_value") return attr_.ToString();
      std::string out = symbol_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kPathApply:
      return children_[0]->ToString() + " " + path_.ToString();
    case Kind::kSubquery:
      return "{subquery}";
  }
  return "?";
}

}  // namespace sgmlqdb::calculus
