#include "calculus/eval.h"

#include <algorithm>
#include <functional>
#include <set>

#include "base/exec_guard.h"
#include "base/fault_injection.h"
#include "text/pattern.h"
#include "text/query_cache.h"

namespace sgmlqdb::calculus {

using om::Value;
using om::ValueKind;
using path::Path;
using path::PathStep;

bool Env::Has(const Variable& v) const {
  switch (v.sort) {
    case Sort::kData:
      return data.count(v.name) > 0;
    case Sort::kPath:
      return paths.count(v.name) > 0;
    case Sort::kAttr:
      return attrs.count(v.name) > 0;
  }
  return false;
}

namespace {

using EmitFn = std::function<Status(const Env&)>;

/// Sentinel: a term evaluation that "fails soft" (no such field, index
/// out of range, capture mismatch) makes the enclosing atom false
/// rather than erroring the query — this is the paper's "each atom
/// where this occurs is false" rule (§5.3).
bool IsSoftFailure(const Status& s) {
  return s.code() == StatusCode::kNotFound ||
         s.code() == StatusCode::kTypeError;
}

class Evaluator {
 public:
  explicit Evaluator(const EvalContext& ctx) : ctx_(ctx) {}

  /// Cooperative limit probe for the evaluation loops; amortized, so
  /// cheap enough per navigation step / per generated binding.
  Status ProbeGuard() {
    if (ctx_.guard == nullptr) return Status::OK();
    return ctx_.guard->Probe();
  }

  // ---- Terms ----------------------------------------------------------

  Result<Value> EvalTerm(const DataTerm& term, const Env& env) {
    switch (term.kind()) {
      case DataTerm::Kind::kVariable: {
        auto it = env.data.find(term.var_name());
        if (it == env.data.end()) {
          return Status::Internal("unbound data variable " + term.var_name());
        }
        return it->second;
      }
      case DataTerm::Kind::kConstant:
        return term.constant();
      case DataTerm::Kind::kName: {
        return ctx_.db->LookupName(term.root_name());
      }
      case DataTerm::Kind::kTupleCons: {
        std::vector<std::pair<std::string, Value>> fields;
        for (const auto& [attr, t] : term.tuple_fields()) {
          std::string name = attr.name;
          if (attr.is_variable) {
            auto it = env.attrs.find(attr.name);
            if (it == env.attrs.end()) {
              return Status::Internal("unbound attribute variable " +
                                      attr.name);
            }
            name = it->second;
          }
          SGMLQDB_ASSIGN_OR_RETURN(Value v, EvalTerm(*t, env));
          fields.emplace_back(name, std::move(v));
        }
        return Value::Tuple(std::move(fields));
      }
      case DataTerm::Kind::kListCons: {
        std::vector<Value> elems;
        for (const DataTermPtr& t : term.children()) {
          SGMLQDB_ASSIGN_OR_RETURN(Value v, EvalTerm(*t, env));
          elems.push_back(std::move(v));
        }
        return Value::List(std::move(elems));
      }
      case DataTerm::Kind::kSetCons: {
        std::vector<Value> elems;
        for (const DataTermPtr& t : term.children()) {
          SGMLQDB_ASSIGN_OR_RETURN(Value v, EvalTerm(*t, env));
          elems.push_back(std::move(v));
        }
        return Value::Set(std::move(elems));
      }
      case DataTerm::Kind::kFunction:
        return EvalFunction(term, env);
      case DataTerm::Kind::kPathApply: {
        SGMLQDB_ASSIGN_OR_RETURN(Value base, EvalTerm(*term.base(), env));
        // All components must be bound; walk them.
        Value result;
        bool found = false;
        SGMLQDB_RETURN_IF_ERROR(MatchComponents(
            term.path().components(), 0, base, env,
            [&result, &found](const Env&, const Value& v) -> Status {
              result = v;
              found = true;
              return Status::OK();
            },
            /*generate=*/false));
        if (!found) {
          return Status::NotFound("path " + term.path().ToString() +
                                  " does not apply");
        }
        return result;
      }
      case DataTerm::Kind::kSubquery: {
        // Nested query: free variables of the body beyond its head
        // come from the enclosing environment.
        return EvaluateSubquery(*term.subquery(), env);
      }
    }
    return Status::Internal("unhandled term kind");
  }

  Result<Value> EvalFunction(const DataTerm& term, const Env& env) {
    const std::string& fn = term.function_name();
    if (fn == "__path_value") {
      // A path term in data position: all variables must be bound.
      Path p;
      SGMLQDB_ASSIGN_OR_RETURN(p, ResolveClosedPath(term.path(), env));
      return p.ToValue();
    }
    if (fn == "__attr_value") {
      if (!term.attr().is_variable) return Value::String(term.attr().name);
      auto it = env.attrs.find(term.attr().name);
      if (it == env.attrs.end()) {
        return Status::Internal("unbound attribute variable " +
                                term.attr().name);
      }
      return Value::String(it->second);
    }
    std::vector<Value> args;
    for (const DataTermPtr& t : term.children()) {
      SGMLQDB_ASSIGN_OR_RETURN(Value v, EvalTerm(*t, env));
      args.push_back(std::move(v));
    }
    return ApplyFunction(fn, args);
  }

  Result<Value> ApplyFunction(const std::string& fn,
                              const std::vector<Value>& args) {
    auto arity = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::TypeError("function " + fn + " expects " +
                                 std::to_string(n) + " argument(s)");
      }
      return Status::OK();
    };
    if (fn == "length") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      const Value& v = args[0];
      if (v.kind() == ValueKind::kList || v.kind() == ValueKind::kSet) {
        return Value::Integer(static_cast<int64_t>(v.size()));
      }
      if (v.kind() == ValueKind::kString) {
        return Value::Integer(static_cast<int64_t>(v.AsString().size()));
      }
      return Status::TypeError("length() expects a list, set or string");
    }
    if (fn == "count") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      const Value& v = args[0];
      if (v.kind() == ValueKind::kList || v.kind() == ValueKind::kSet) {
        return Value::Integer(static_cast<int64_t>(v.size()));
      }
      return Status::TypeError("count() expects a collection");
    }
    if (fn == "name") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      // name() of an attribute-as-data value: identity on strings.
      if (args[0].kind() == ValueKind::kString) return args[0];
      return Status::TypeError("name() expects an attribute");
    }
    if (fn == "first" || fn == "last") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      const Value& v = args[0];
      if (v.kind() != ValueKind::kList || v.size() == 0) {
        return Status::NotFound(fn + "() on empty or non-list");
      }
      return v.Element(fn == "first" ? 0 : v.size() - 1);
    }
    if (fn == "element") {
      SGMLQDB_RETURN_IF_ERROR(arity(2));
      const Value& v = args[0];
      if (v.kind() != ValueKind::kList ||
          args[1].kind() != ValueKind::kInteger) {
        return Status::TypeError("element() expects (list, integer)");
      }
      int64_t i = args[1].AsInteger();
      if (i < 0 || static_cast<size_t>(i) >= v.size()) {
        return Status::NotFound("element() index out of range");
      }
      return v.Element(static_cast<size_t>(i));
    }
    if (fn == "set_to_list") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      const Value& v = args[0];
      if (v.kind() != ValueKind::kSet) {
        return Status::TypeError("set_to_list() expects a set");
      }
      std::vector<Value> elems;
      for (size_t i = 0; i < v.size(); ++i) elems.push_back(v.Element(i));
      return Value::List(std::move(elems));
    }
    if (fn == "text") {
      SGMLQDB_RETURN_IF_ERROR(arity(1));
      return TextOf(args[0]);
    }
    if (fn == "__select_attr") {
      // O2SQL attribute access with implicit dereferencing and the
      // paper's *implicit selectors* on marked unions (§4.2): selecting
      // s.subsectns on a section implicitly requires s.a2 to be
      // defined; otherwise the access soft-fails (row filtered out).
      SGMLQDB_RETURN_IF_ERROR(arity(2));
      if (args[1].kind() != ValueKind::kString) {
        return Status::TypeError("__select_attr expects an attribute name");
      }
      return SelectAttr(args[0], args[1].AsString());
    }
    if (fn == "__index") {
      SGMLQDB_RETURN_IF_ERROR(arity(2));
      if (args[1].kind() != ValueKind::kInteger) {
        return Status::TypeError("__index expects an integer");
      }
      Value v = args[0];
      if (v.kind() == ValueKind::kObject) {
        SGMLQDB_ASSIGN_OR_RETURN(v, ctx_.db->Deref(v.AsObject()));
      }
      if (v.kind() == ValueKind::kTuple) v = v.AsHeterogeneousList();
      if (v.kind() != ValueKind::kList) {
        return Status::TypeError("cannot index " + v.ToString());
      }
      int64_t i = args[1].AsInteger();
      if (i < 0 || static_cast<size_t>(i) >= v.size()) {
        return Status::NotFound("index out of range");
      }
      return v.Element(static_cast<size_t>(i));
    }
    if (fn == "set_difference") {
      SGMLQDB_RETURN_IF_ERROR(arity(2));
      if (args[0].kind() != ValueKind::kSet ||
          args[1].kind() != ValueKind::kSet) {
        return Status::TypeError("set_difference expects two sets");
      }
      std::vector<Value> out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        Value e = args[0].Element(i);
        bool in_rhs = false;
        for (size_t j = 0; j < args[1].size(); ++j) {
          if (args[1].Element(j) == e) in_rhs = true;
        }
        if (!in_rhs) out.push_back(std::move(e));
      }
      return Value::Set(std::move(out));
    }
    if (fn == "positions") {
      // Positions of an attribute in the heterogeneous-list view of a
      // tuple / marked union (§4.4, query Q6).
      SGMLQDB_RETURN_IF_ERROR(arity(2));
      if (args[1].kind() != ValueKind::kString) {
        return Status::TypeError("positions expects an attribute name");
      }
      Value v = args[0];
      if (v.kind() == ValueKind::kObject) {
        SGMLQDB_ASSIGN_OR_RETURN(v, ctx_.db->Deref(v.AsObject()));
      }
      // Descend through a marked-union wrapper whose single field is
      // not the requested attribute.
      if (v.IsMarkedUnionValue() && v.FieldName(0) != args[1].AsString()) {
        v = v.FieldValue(0);
        if (v.kind() == ValueKind::kObject) {
          SGMLQDB_ASSIGN_OR_RETURN(v, ctx_.db->Deref(v.AsObject()));
        }
      }
      if (v.kind() != ValueKind::kTuple) {
        return Status::TypeError("positions expects a tuple");
      }
      std::vector<Value> out;
      for (size_t i = 0; i < v.size(); ++i) {
        if (v.FieldName(i) == args[1].AsString()) {
          out.push_back(Value::Integer(static_cast<int64_t>(i)));
        }
      }
      return Value::List(std::move(out));
    }
    return Status::NotFound("unknown interpreted function '" + fn + "'");
  }

  /// Implements `v.attr` with implicit dereferencing and implicit
  /// selectors (see __select_attr above).
  Result<Value> SelectAttr(Value v, const std::string& attr) {
    return SelectAttrValue(ctx_, v, attr);
  }

  /// The text() inverse mapping (§4.2): strings are themselves;
  /// objects map to their element's inner text.
  Result<Value> TextOf(const Value& v) { return TextOfValue(ctx_, v); }

  Result<Path> ResolveClosedPath(const PathTerm& term, const Env& env) {
    Path out;
    for (const PathComponent& c : term.components()) {
      switch (c.kind) {
        case PathComponent::Kind::kVar: {
          auto it = env.paths.find(c.var);
          if (it == env.paths.end()) {
            return Status::Internal("unbound path variable " + c.var);
          }
          out = out.Concat(it->second);
          break;
        }
        case PathComponent::Kind::kDeref:
          out = out.Append(PathStep::Deref());
          break;
        case PathComponent::Kind::kAttrSel: {
          if (c.attr.is_variable) {
            auto it = env.attrs.find(c.attr.name);
            if (it == env.attrs.end()) {
              return Status::Internal("unbound attribute variable " +
                                      c.attr.name);
            }
            out = out.Append(PathStep::Attr(it->second));
          } else {
            out = out.Append(PathStep::Attr(c.attr.name));
          }
          break;
        }
        case PathComponent::Kind::kIndexConst:
          out = out.Append(PathStep::Index(c.index));
          break;
        case PathComponent::Kind::kIndexVar: {
          auto it = env.data.find(c.var);
          if (it == env.data.end() ||
              it->second.kind() != ValueKind::kInteger) {
            return Status::Internal("index variable " + c.var +
                                    " unbound or not an integer");
          }
          out = out.Append(PathStep::Index(it->second.AsInteger()));
          break;
        }
        case PathComponent::Kind::kCapture:
          break;  // captures leave no trace in the concrete path
        case PathComponent::Kind::kSetCapture: {
          auto it = env.data.find(c.var);
          if (it == env.data.end()) {
            return Status::Internal("unbound set variable " + c.var);
          }
          out = out.Append(PathStep::SetElem(it->second));
          break;
        }
      }
    }
    return out;
  }

  // ---- Path matching --------------------------------------------------

  /// Walks path components from `current`, extending `env` at binding
  /// components, calling `emit` for every way the full component list
  /// applies. With generate=false, unbound variables are an error.
  using MatchEmit = std::function<Status(const Env&, const Value&)>;

  Status MatchComponents(const std::vector<PathComponent>& cs, size_t idx,
                         const Value& current, const Env& env,
                         const MatchEmit& emit, bool generate) {
    SGMLQDB_FAULT_POINT("eval.nav");
    SGMLQDB_RETURN_IF_ERROR(ProbeGuard());
    if (idx == cs.size()) return emit(env, current);
    const PathComponent& c = cs[idx];
    switch (c.kind) {
      case PathComponent::Kind::kVar: {
        auto it = env.paths.find(c.var);
        if (it != env.paths.end()) {
          Result<Value> next = path::ApplyPath(*ctx_.db, current, it->second);
          if (!next.ok()) {
            if (IsSoftFailure(next.status())) return Status::OK();
            return next.status();
          }
          return MatchComponents(cs, idx + 1, next.value(), env, emit,
                                 generate);
        }
        if (!generate) {
          return Status::Internal("unbound path variable " + c.var);
        }
        // Enumerate all paths from `current` under the context's
        // semantics; each is a candidate value for the variable.
        path::EnumerateOptions opts;
        opts.semantics = ctx_.semantics;
        Status inner_status;
        path::EnumeratePaths(
            *ctx_.db, current, opts,
            [&](const Path& p, const Value& v) {
              Env env2 = env;
              env2.paths[c.var] = p;
              Status st =
                  MatchComponents(cs, idx + 1, v, env2, emit, generate);
              if (!st.ok()) {
                inner_status = st;
                return false;
              }
              return true;
            });
        return inner_status;
      }
      case PathComponent::Kind::kDeref: {
        if (current.kind() != ValueKind::kObject) return Status::OK();
        Result<Value> v = ctx_.db->Deref(current.AsObject());
        if (!v.ok()) return Status::OK();
        return MatchComponents(cs, idx + 1, v.value(), env, emit, generate);
      }
      case PathComponent::Kind::kAttrSel: {
        if (current.kind() != ValueKind::kTuple) return Status::OK();
        if (!c.attr.is_variable) {
          std::optional<Value> f = current.FindField(c.attr.name);
          if (!f.has_value()) return Status::OK();
          return MatchComponents(cs, idx + 1, *f, env, emit, generate);
        }
        auto it = env.attrs.find(c.attr.name);
        if (it != env.attrs.end()) {
          std::optional<Value> f = current.FindField(it->second);
          if (!f.has_value()) return Status::OK();
          return MatchComponents(cs, idx + 1, *f, env, emit, generate);
        }
        if (!generate) {
          return Status::Internal("unbound attribute variable " +
                                  c.attr.name);
        }
        for (size_t i = 0; i < current.size(); ++i) {
          Env env2 = env;
          env2.attrs[c.attr.name] = current.FieldName(i);
          SGMLQDB_RETURN_IF_ERROR(MatchComponents(
              cs, idx + 1, current.FieldValue(i), env2, emit, generate));
        }
        return Status::OK();
      }
      case PathComponent::Kind::kIndexConst: {
        // Ordered tuples are also heterogeneous lists (§4.4/§5.1):
        // indexing a tuple indexes its [ai: vi] field list.
        Value indexable = current.kind() == ValueKind::kTuple
                              ? current.AsHeterogeneousList()
                              : current;
        if (indexable.kind() != ValueKind::kList || c.index < 0 ||
            static_cast<size_t>(c.index) >= indexable.size()) {
          return Status::OK();
        }
        return MatchComponents(
            cs, idx + 1, indexable.Element(static_cast<size_t>(c.index)),
            env, emit, generate);
      }
      case PathComponent::Kind::kIndexVar: {
        Value indexable = current.kind() == ValueKind::kTuple
                              ? current.AsHeterogeneousList()
                              : current;
        if (indexable.kind() != ValueKind::kList) return Status::OK();
        auto it = env.data.find(c.var);
        if (it != env.data.end()) {
          if (it->second.kind() != ValueKind::kInteger) return Status::OK();
          int64_t i = it->second.AsInteger();
          if (i < 0 || static_cast<size_t>(i) >= indexable.size()) {
            return Status::OK();
          }
          return MatchComponents(cs, idx + 1,
                                 indexable.Element(static_cast<size_t>(i)),
                                 env, emit, generate);
        }
        if (!generate) {
          return Status::Internal("unbound index variable " + c.var);
        }
        for (size_t i = 0; i < indexable.size(); ++i) {
          Env env2 = env;
          env2.data[c.var] = Value::Integer(static_cast<int64_t>(i));
          SGMLQDB_RETURN_IF_ERROR(MatchComponents(
              cs, idx + 1, indexable.Element(i), env2, emit, generate));
        }
        return Status::OK();
      }
      case PathComponent::Kind::kCapture: {
        auto it = env.data.find(c.var);
        if (it != env.data.end()) {
          if (it->second != current) return Status::OK();
          return MatchComponents(cs, idx + 1, current, env, emit, generate);
        }
        if (!generate) {
          return Status::Internal("unbound capture variable " + c.var);
        }
        Env env2 = env;
        env2.data[c.var] = current;
        return MatchComponents(cs, idx + 1, current, env2, emit, generate);
      }
      case PathComponent::Kind::kSetCapture: {
        if (current.kind() != ValueKind::kSet) return Status::OK();
        auto it = env.data.find(c.var);
        if (it != env.data.end()) {
          bool member = false;
          for (size_t i = 0; i < current.size(); ++i) {
            if (current.Element(i) == it->second) member = true;
          }
          if (!member) return Status::OK();
          return MatchComponents(cs, idx + 1, it->second, env, emit,
                                 generate);
        }
        if (!generate) {
          return Status::Internal("unbound set variable " + c.var);
        }
        for (size_t i = 0; i < current.size(); ++i) {
          Env env2 = env;
          env2.data[c.var] = current.Element(i);
          SGMLQDB_RETURN_IF_ERROR(MatchComponents(
              cs, idx + 1, current.Element(i), env2, emit, generate));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unhandled path component");
  }

  // ---- Formulas ---------------------------------------------------------

  /// Bound variables visible in an environment.
  static std::set<Variable> BoundVars(const Env& env) {
    std::set<Variable> out;
    for (const auto& [k, v] : env.data) out.insert(DataVar(k));
    for (const auto& [k, v] : env.paths) out.insert(PathVar(k));
    for (const auto& [k, v] : env.attrs) out.insert(AttrVar(k));
    return out;
  }

  static bool AllBound(const std::set<Variable>& vars,
                       const std::set<Variable>& bound) {
    for (const Variable& v : vars) {
      if (bound.count(v) == 0) return false;
    }
    return true;
  }

  /// Can `f` be evaluated (as generator or filter) given `bound`?
  /// This is the static range-restriction analysis: it is purely
  /// syntactic (no data access).
  static bool CanEvaluate(const Formula& f, const std::set<Variable>& bound) {
    std::set<Variable> free = f.FreeVariables();
    if (AllBound(free, bound)) return true;
    switch (f.kind()) {
      case Formula::Kind::kPathPred: {
        std::set<Variable> base_vars;
        CollectVariables(*f.terms()[0], &base_vars);
        return AllBound(base_vars, bound);
      }
      case Formula::Kind::kIn: {
        std::set<Variable> coll_vars;
        CollectVariables(*f.terms()[1], &coll_vars);
        if (!AllBound(coll_vars, bound)) return false;
        // The element side generates only if it is a bare variable.
        return f.terms()[0]->kind() == DataTerm::Kind::kVariable;
      }
      case Formula::Kind::kEq: {
        std::set<Variable> l, r;
        CollectVariables(*f.terms()[0], &l);
        CollectVariables(*f.terms()[1], &r);
        bool l_closed = AllBound(l, bound);
        bool r_closed = AllBound(r, bound);
        if (l_closed && f.terms()[1]->kind() == DataTerm::Kind::kVariable) {
          return true;
        }
        if (r_closed && f.terms()[0]->kind() == DataTerm::Kind::kVariable) {
          return true;
        }
        return false;
      }
      case Formula::Kind::kAnd: {
        // Simulate greedy ordering.
        std::set<Variable> b = bound;
        std::vector<const Formula*> pending;
        for (const FormulaPtr& c : f.children()) pending.push_back(c.get());
        while (!pending.empty()) {
          bool progressed = false;
          for (size_t i = 0; i < pending.size(); ++i) {
            if (CanEvaluate(*pending[i], b)) {
              std::set<Variable> free_i = pending[i]->FreeVariables();
              b.insert(free_i.begin(), free_i.end());
              pending.erase(pending.begin() + static_cast<long>(i));
              progressed = true;
              break;
            }
          }
          if (!progressed) return false;
        }
        return true;
      }
      case Formula::Kind::kOr: {
        // Every branch must be evaluable and bind all of the
        // disjunction's free variables.
        for (const FormulaPtr& c : f.children()) {
          if (!CanEvaluate(*c, bound)) return false;
          if (c->FreeVariables() != free) {
            // Branch must cover the same free variables (minus bound).
            std::set<Variable> cf = c->FreeVariables();
            for (const Variable& v : free) {
              if (bound.count(v) == 0 && cf.count(v) == 0) return false;
            }
          }
        }
        return true;
      }
      case Formula::Kind::kExists:
        return CanEvaluate(*f.children()[0], bound);
      default:
        return false;  // filters need all vars bound (handled above)
    }
  }

  /// Streams every satisfying extension of `env`.
  Status EvalFormula(const Formula& f, const Env& env, const EmitFn& emit) {
    SGMLQDB_RETURN_IF_ERROR(ProbeGuard());
    std::set<Variable> bound = BoundVars(env);
    std::set<Variable> free = f.FreeVariables();
    if (AllBound(free, bound) && f.kind() != Formula::Kind::kAnd &&
        f.kind() != Formula::Kind::kOr &&
        f.kind() != Formula::Kind::kExists) {
      SGMLQDB_ASSIGN_OR_RETURN(bool ok, EvalCheck(f, env));
      if (ok) return emit(env);
      return Status::OK();
    }
    switch (f.kind()) {
      case Formula::Kind::kPathPred: {
        Result<Value> base = EvalTerm(*f.terms()[0], env);
        if (!base.ok()) {
          if (IsSoftFailure(base.status())) return Status::OK();
          return base.status();
        }
        return MatchComponents(
            f.path().components(), 0, base.value(), env,
            [&emit](const Env& e, const Value&) { return emit(e); },
            /*generate=*/true);
      }
      case Formula::Kind::kIn: {
        Result<Value> coll = EvalTerm(*f.terms()[1], env);
        if (!coll.ok()) {
          if (IsSoftFailure(coll.status())) return Status::OK();
          return coll.status();
        }
        if (coll.value().kind() != ValueKind::kList &&
            coll.value().kind() != ValueKind::kSet) {
          return Status::OK();
        }
        const std::string& var = f.terms()[0]->var_name();
        for (size_t i = 0; i < coll.value().size(); ++i) {
          SGMLQDB_RETURN_IF_ERROR(ProbeGuard());
          Env env2 = env;
          env2.data[var] = coll.value().Element(i);
          SGMLQDB_RETURN_IF_ERROR(emit(env2));
        }
        return Status::OK();
      }
      case Formula::Kind::kEq: {
        // One side closed, other a fresh variable.
        const DataTerm& lhs = *f.terms()[0];
        const DataTerm& rhs = *f.terms()[1];
        std::set<Variable> l;
        CollectVariables(lhs, &l);
        bool l_closed = AllBound(l, bound);
        const DataTerm& closed = l_closed ? lhs : rhs;
        const DataTerm& open = l_closed ? rhs : lhs;
        if (open.kind() != DataTerm::Kind::kVariable) {
          return Status::TypeError("equality cannot range-restrict " +
                                   open.ToString());
        }
        Result<Value> v = EvalTerm(closed, env);
        if (!v.ok()) {
          if (IsSoftFailure(v.status())) return Status::OK();
          return v.status();
        }
        Env env2 = env;
        env2.data[open.var_name()] = v.value();
        return emit(env2);
      }
      case Formula::Kind::kAnd: {
        std::vector<FormulaPtr> pending = f.children();
        return EvalConjunction(pending, env, emit);
      }
      case Formula::Kind::kOr: {
        for (const FormulaPtr& c : f.children()) {
          SGMLQDB_RETURN_IF_ERROR(EvalFormula(*c, env, emit));
        }
        return Status::OK();
      }
      case Formula::Kind::kExists: {
        // Bindings for the quantified variables are discovered by the
        // body; project them away before emitting.
        std::vector<Variable> qs = f.variables();
        return EvalFormula(*f.children()[0], env,
                           [&qs, &emit](const Env& e) {
                             Env projected = e;
                             for (const Variable& q : qs) {
                               projected.data.erase(q.name);
                               projected.paths.erase(q.name);
                               projected.attrs.erase(q.name);
                             }
                             return emit(projected);
                           });
      }
      default:
        return Status::TypeError(
            "formula is not range-restricted: " + f.ToString() +
            " has unbound variables and cannot generate them");
    }
  }

  Status EvalConjunction(std::vector<FormulaPtr> pending, const Env& env,
                         const EmitFn& emit) {
    if (pending.empty()) return emit(env);
    std::set<Variable> bound = BoundVars(env);
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!CanEvaluate(*pending[i], bound)) continue;
      FormulaPtr chosen = pending[i];
      std::vector<FormulaPtr> rest = pending;
      rest.erase(rest.begin() + static_cast<long>(i));
      return EvalFormula(*chosen, env, [this, &rest, &emit](const Env& e) {
        return EvalConjunction(rest, e, emit);
      });
    }
    std::string names;
    for (const FormulaPtr& p : pending) {
      if (!names.empty()) names += "; ";
      names += p->ToString();
    }
    return Status::TypeError("query is not range-restricted; stuck on: " +
                             names);
  }

  /// Boolean check with all free variables bound.
  Result<bool> EvalCheck(const Formula& f, const Env& env) {
    switch (f.kind()) {
      case Formula::Kind::kEq: {
        SGMLQDB_ASSIGN_OR_RETURN(Value pair, EvalSides(f, env));
        if (pair.is_nil()) return false;  // soft failure
        return pair.Element(0) == pair.Element(1);
      }
      case Formula::Kind::kLess: {
        SGMLQDB_ASSIGN_OR_RETURN(Value pair, EvalSides(f, env));
        if (pair.is_nil()) return false;
        const Value& a = pair.Element(0);
        const Value& b = pair.Element(1);
        if (a.kind() != b.kind()) return false;
        return Value::Compare(a, b) < 0;
      }
      case Formula::Kind::kIn: {
        SGMLQDB_ASSIGN_OR_RETURN(Value pair, EvalSides(f, env));
        if (pair.is_nil()) return false;
        const Value& coll = pair.Element(1);
        if (coll.kind() != ValueKind::kList &&
            coll.kind() != ValueKind::kSet) {
          return false;
        }
        for (size_t i = 0; i < coll.size(); ++i) {
          if (coll.Element(i) == pair.Element(0)) return true;
        }
        return false;
      }
      case Formula::Kind::kSubset: {
        SGMLQDB_ASSIGN_OR_RETURN(Value pair, EvalSides(f, env));
        if (pair.is_nil()) return false;
        const Value& a = pair.Element(0);
        const Value& b = pair.Element(1);
        if (a.kind() != ValueKind::kSet || b.kind() != ValueKind::kSet) {
          return false;
        }
        for (size_t i = 0; i < a.size(); ++i) {
          bool found = false;
          for (size_t j = 0; j < b.size(); ++j) {
            if (a.Element(i) == b.Element(j)) found = true;
          }
          if (!found) return false;
        }
        return true;
      }
      case Formula::Kind::kPathPred: {
        Result<Value> base = EvalTerm(*f.terms()[0], env);
        if (!base.ok()) {
          if (IsSoftFailure(base.status())) return false;
          return base.status();
        }
        bool holds = false;
        SGMLQDB_RETURN_IF_ERROR(MatchComponents(
            f.path().components(), 0, base.value(), env,
            [&holds](const Env&, const Value&) {
              holds = true;
              return Status::OK();
            },
            /*generate=*/true));
        return holds;
      }
      case Formula::Kind::kInterpreted:
        return EvalInterpreted(f, env);
      case Formula::Kind::kAnd: {
        for (const FormulaPtr& c : f.children()) {
          SGMLQDB_ASSIGN_OR_RETURN(bool ok, EvalCheck(*c, env));
          if (!ok) return false;
        }
        return true;
      }
      case Formula::Kind::kOr: {
        for (const FormulaPtr& c : f.children()) {
          SGMLQDB_ASSIGN_OR_RETURN(bool ok, EvalCheck(*c, env));
          if (ok) return true;
        }
        return false;
      }
      case Formula::Kind::kNot: {
        // The inner formula may have its own (existential) variables.
        bool any = false;
        SGMLQDB_RETURN_IF_ERROR(
            EvalFormula(*f.children()[0], env, [&any](const Env&) {
              any = true;
              return Status::OK();
            }));
        return !any;
      }
      case Formula::Kind::kExists: {
        bool any = false;
        SGMLQDB_RETURN_IF_ERROR(EvalFormula(f, env, [&any](const Env&) {
          any = true;
          return Status::OK();
        }));
        return any;
      }
      case Formula::Kind::kForAll: {
        // forall X (phi) == not exists X (not phi); only supported when
        // phi = (not gen) or rest — the guarded-implication pattern.
        FormulaPtr inner = f.children()[0];
        if (inner->kind() != Formula::Kind::kOr) {
          return Status::Unsupported(
              "universal quantification requires the guarded form "
              "forall X (not range(X) or cond(X))");
        }
        const Formula* guard = nullptr;
        std::vector<FormulaPtr> conds;
        for (const FormulaPtr& c : inner->children()) {
          if (guard == nullptr && c->kind() == Formula::Kind::kNot) {
            guard = c->children()[0].get();
          } else {
            conds.push_back(c);
          }
        }
        if (guard == nullptr) {
          return Status::Unsupported(
              "universal quantification requires a negated range guard");
        }
        bool all = true;
        SGMLQDB_RETURN_IF_ERROR(EvalFormula(
            *guard, env, [this, &conds, &all](const Env& e) -> Status {
              bool any = false;
              for (const FormulaPtr& c : conds) {
                SGMLQDB_ASSIGN_OR_RETURN(bool ok, EvalCheck(*c, e));
                if (ok) any = true;
              }
              if (!any) all = false;
              return Status::OK();
            }));
        return all;
      }
    }
    return Status::Internal("unhandled formula kind in EvalCheck");
  }

  /// Evaluates both sides of a binary atom; nil result signals a soft
  /// failure (atom is false).
  Result<Value> EvalSides(const Formula& f, const Env& env) {
    Result<Value> a = EvalTerm(*f.terms()[0], env);
    if (!a.ok()) {
      if (IsSoftFailure(a.status())) return Value::Nil();
      return a.status();
    }
    Result<Value> b = EvalTerm(*f.terms()[1], env);
    if (!b.ok()) {
      if (IsSoftFailure(b.status())) return Value::Nil();
      return b.status();
    }
    return Value::List({a.value(), b.value()});
  }

  Result<bool> EvalInterpreted(const Formula& f, const Env& env) {
    const std::string& pred = f.predicate();
    std::vector<Value> args;
    for (const DataTermPtr& t : f.terms()) {
      Result<Value> v = EvalTerm(*t, env);
      if (!v.ok()) {
        if (IsSoftFailure(v.status())) return false;
        return v.status();
      }
      args.push_back(std::move(v).value());
    }
    if (pred == "contains") {
      if (args.size() != 2 || args[1].kind() != ValueKind::kString) {
        return Status::TypeError(
            "contains expects (text, pattern-string)");
      }
      if (ctx_.text_cache != nullptr) {
        // Memoized path: parse the pattern once per query (not per
        // row) and, for objects, probe the inverted-index candidate
        // set before touching the text.
        SGMLQDB_ASSIGN_OR_RETURN(
            auto entry,
            ctx_.text_cache->Contains(ctx_.text_index, args[1].AsString(),
                                      ctx_.text_epoch));
        if (args[0].kind() == ValueKind::kObject &&
            entry->candidates != nullptr) {
          bool member =
              entry->candidates->count(args[0].AsObject().id()) > 0;
          if (!member) return false;
          if (entry->exact) return true;
        }
        Result<Value> text = TextOf(args[0]);
        if (!text.ok()) {
          if (IsSoftFailure(text.status())) return false;
          return text.status();
        }
        return entry->pattern.Matches(text.value().AsString());
      }
      Result<Value> text = TextOf(args[0]);
      if (!text.ok()) {
        if (IsSoftFailure(text.status())) return false;
        return text.status();
      }
      SGMLQDB_ASSIGN_OR_RETURN(text::Pattern p,
                               text::Pattern::Parse(args[1].AsString()));
      return p.Matches(text.value().AsString());
    }
    if (pred == "near") {
      if (args.size() != 4 || args[1].kind() != ValueKind::kString ||
          args[2].kind() != ValueKind::kString ||
          args[3].kind() != ValueKind::kInteger) {
        return Status::TypeError("near expects (text, word, word, k)");
      }
      if (ctx_.text_cache != nullptr && ctx_.text_index != nullptr &&
          args[0].kind() == ValueKind::kObject &&
          text::IsPlainSingleWord(args[1].AsString()) &&
          text::IsPlainSingleWord(args[2].AsString())) {
        // Plain words on an indexed element: the positional index
        // answers exactly (same tokenization, case-insensitive).
        auto units = ctx_.text_cache->NearUnits(
            *ctx_.text_index, args[1].AsString(), args[2].AsString(),
            static_cast<size_t>(args[3].AsInteger()), ctx_.text_epoch);
        return units->count(args[0].AsObject().id()) > 0;
      }
      Result<Value> text = TextOf(args[0]);
      if (!text.ok()) {
        if (IsSoftFailure(text.status())) return false;
        return text.status();
      }
      return text::Near(text.value().AsString(), args[1].AsString(),
                        args[2].AsString(),
                        static_cast<size_t>(args[3].AsInteger()));
    }
    return Status::NotFound("unknown interpreted predicate '" + pred + "'");
  }

  // ---- Queries ---------------------------------------------------------

  Result<Value> EvaluateSubquery(const Query& query, const Env& outer) {
    std::vector<Value> rows;
    SGMLQDB_RETURN_IF_ERROR(
        EvalFormula(*query.body, outer, [&](const Env& env) -> Status {
          SGMLQDB_ASSIGN_OR_RETURN(Value row, HeadTuple(query.head, env));
          rows.push_back(std::move(row));
          return Status::OK();
        }));
    if (query.head.size() == 1) {
      // Single-variable head: a set of values, not 1-tuples.
      std::vector<Value> elems;
      for (const Value& row : rows) elems.push_back(row.FieldValue(0));
      return Value::Set(std::move(elems));
    }
    return Value::Set(std::move(rows));
  }

  static Result<Value> HeadTuple(const std::vector<Variable>& head,
                                 const Env& env) {
    std::vector<std::pair<std::string, Value>> fields;
    for (const Variable& v : head) {
      switch (v.sort) {
        case Sort::kData: {
          auto it = env.data.find(v.name);
          if (it == env.data.end()) {
            return Status::TypeError("head variable " + v.name +
                                     " is not bound by the formula");
          }
          fields.emplace_back(v.name, it->second);
          break;
        }
        case Sort::kPath: {
          auto it = env.paths.find(v.name);
          if (it == env.paths.end()) {
            return Status::TypeError("head path variable " + v.name +
                                     " is not bound by the formula");
          }
          fields.emplace_back(v.name, it->second.ToValue());
          break;
        }
        case Sort::kAttr: {
          auto it = env.attrs.find(v.name);
          if (it == env.attrs.end()) {
            return Status::TypeError("head attribute variable " + v.name +
                                     " is not bound by the formula");
          }
          fields.emplace_back(v.name, Value::String(it->second));
          break;
        }
      }
    }
    return Value::Tuple(std::move(fields));
  }

  const EvalContext& ctx_;
};

}  // namespace

Result<om::Value> EvaluateQuery(const EvalContext& ctx, const Query& query) {
  if (ctx.db == nullptr) {
    return Status::InvalidArgument("EvalContext.db must be set");
  }
  // The head must be exactly the free variables of the body.
  std::set<Variable> free = query.body->FreeVariables();
  for (const Variable& v : query.head) {
    if (free.count(v) == 0) {
      return Status::TypeError("head variable " + v.name +
                               " is not free in the body");
    }
  }
  if (free.size() != query.head.size()) {
    std::string extra;
    for (const Variable& v : free) {
      bool in_head = false;
      for (const Variable& h : query.head) {
        if (h == v) in_head = true;
      }
      if (!in_head) extra += (extra.empty() ? "" : ", ") + v.name;
    }
    return Status::TypeError("free variables not in head: " + extra);
  }
  if (!Evaluator::CanEvaluate(*query.body, {})) {
    return Status::TypeError("query is not range-restricted: " +
                             query.ToString());
  }
  Evaluator ev(ctx);
  std::vector<Value> rows;
  SGMLQDB_RETURN_IF_ERROR(
      ev.EvalFormula(*query.body, Env{}, [&](const Env& env) -> Status {
        if (ctx.guard != nullptr) {
          SGMLQDB_RETURN_IF_ERROR(ctx.guard->CountRows(1));
        }
        SGMLQDB_ASSIGN_OR_RETURN(Value row,
                                 Evaluator::HeadTuple(query.head, env));
        rows.push_back(std::move(row));
        return Status::OK();
      }));
  if (query.head.size() == 1) {
    // Single-variable head: a set of plain values (matches the
    // subquery convention).
    std::vector<Value> elems;
    elems.reserve(rows.size());
    for (const Value& row : rows) elems.push_back(row.FieldValue(0));
    return Value::Set(std::move(elems));
  }
  return Value::Set(std::move(rows));
}

Status CheckRangeRestricted(const Query& query) {
  if (!Evaluator::CanEvaluate(*query.body, {})) {
    return Status::TypeError("query is not range-restricted: " +
                             query.ToString());
  }
  return Status::OK();
}

Result<om::Value> EvaluateClosedTerm(const EvalContext& ctx,
                                     const DataTerm& term) {
  Evaluator ev(ctx);
  return ev.EvalTerm(term, Env{});
}

Result<om::Value> EvaluateClosedTermInEnv(const EvalContext& ctx,
                                          const DataTerm& term,
                                          const Env& env) {
  Evaluator ev(ctx);
  return ev.EvalTerm(term, env);
}

Result<om::Value> SelectAttrValue(const EvalContext& ctx, const om::Value& in,
                                  const std::string& attr) {
  Value v = in;
  if (v.kind() == ValueKind::kObject) {
    SGMLQDB_ASSIGN_OR_RETURN(v, ctx.db->Deref(v.AsObject()));
  }
  if (v.kind() != ValueKind::kTuple) {
    return Status::TypeError("cannot select ." + attr + " on " +
                             v.ToString());
  }
  std::optional<Value> direct = v.FindField(attr);
  if (direct.has_value()) return *direct;
  // Implicit selector: a marked-union value [ai: inner].
  if (v.IsMarkedUnionValue()) {
    Value inner = v.FieldValue(0);
    if (inner.kind() == ValueKind::kObject) {
      SGMLQDB_ASSIGN_OR_RETURN(inner, ctx.db->Deref(inner.AsObject()));
    }
    if (inner.kind() == ValueKind::kTuple) {
      std::optional<Value> f = inner.FindField(attr);
      if (f.has_value()) return *f;
    }
  }
  return Status::NotFound("no attribute '" + attr + "' reachable in " +
                          v.ToString());
}

Result<om::Value> TextOfValue(const EvalContext& ctx, const om::Value& v) {
  if (v.kind() == ValueKind::kString) return v;
  if (v.kind() == ValueKind::kObject) {
    if (ctx.element_texts == nullptr) {
      return Status::InvalidArgument(
          "text() needs the element-text side table (load documents "
          "through the mapping layer)");
    }
    auto it = ctx.element_texts->find(v.AsObject().id());
    if (it == ctx.element_texts->end()) {
      return Status::NotFound("no text recorded for oid " +
                              std::to_string(v.AsObject().id()));
    }
    return Value::String(it->second);
  }
  // Complex value: concatenate the text of its parts (e.g. the
  // marked-union wrapper around a Body).
  if (v.kind() == ValueKind::kTuple || v.kind() == ValueKind::kList ||
      v.kind() == ValueKind::kSet) {
    std::string out;
    for (size_t i = 0; i < v.size(); ++i) {
      Value part =
          v.kind() == ValueKind::kTuple ? v.FieldValue(i) : v.Element(i);
      Result<Value> t = TextOfValue(ctx, part);
      if (!t.ok()) continue;
      if (!out.empty()) out += ' ';
      out += t.value().AsString();
    }
    return Value::String(out);
  }
  return Status::TypeError("text() expects a string or an object");
}

Result<bool> CheckFormulaInEnv(const EvalContext& ctx, const Formula& f,
                               const Env& env) {
  Evaluator ev(ctx);
  return ev.EvalCheck(f, env);
}

}  // namespace sgmlqdb::calculus
