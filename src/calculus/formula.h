// Atoms, formulas and queries of the calculus (paper §5.2).

#ifndef SGMLQDB_CALCULUS_FORMULA_H_
#define SGMLQDB_CALCULUS_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "calculus/terms.h"

namespace sgmlqdb::calculus {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Formulas: atoms closed under conjunction, disjunction, negation and
/// quantification.
class Formula {
 public:
  enum class Kind {
    // Atoms.
    kEq,          // t = t'
    kIn,          // t in t'
    kSubset,      // t ⊆ t'
    kLess,        // t < t' (integers, floats, strings)
    kPathPred,    // <t P>
    kInterpreted, // contains / near / user-registered predicate
    // Connectives.
    kAnd,
    kOr,
    kNot,
    kExists,
    kForAll,
  };

  // -- Atom factories ---------------------------------------------------
  static FormulaPtr Eq(DataTermPtr lhs, DataTermPtr rhs);
  static FormulaPtr In(DataTermPtr elem, DataTermPtr coll);
  static FormulaPtr Subset(DataTermPtr lhs, DataTermPtr rhs);
  static FormulaPtr Less(DataTermPtr lhs, DataTermPtr rhs);
  /// The path predicate <base path>.
  static FormulaPtr PathPred(DataTermPtr base, PathTerm path);
  /// Interpreted predicate: "contains" (args: text term, then a
  /// constant pattern string) or "near" (text, w1, w2, k) or any
  /// predicate registered with the evaluator.
  static FormulaPtr Interpreted(std::string predicate,
                                std::vector<DataTermPtr> args);

  // -- Connectives ------------------------------------------------------
  static FormulaPtr And(std::vector<FormulaPtr> fs);
  static FormulaPtr Or(std::vector<FormulaPtr> fs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr Exists(std::vector<Variable> vars, FormulaPtr f);
  static FormulaPtr ForAll(std::vector<Variable> vars, FormulaPtr f);

  Kind kind() const { return kind_; }
  const std::vector<DataTermPtr>& terms() const { return terms_; }
  const PathTerm& path() const { return path_; }
  const std::string& predicate() const { return symbol_; }
  const std::vector<FormulaPtr>& children() const { return children_; }
  const std::vector<Variable>& variables() const { return variables_; }

  /// Free variables of the formula (all three sorts).
  std::set<Variable> FreeVariables() const;

  std::string ToString() const;

 private:
  Formula() = default;

  Kind kind_ = Kind::kAnd;
  std::vector<DataTermPtr> terms_;
  PathTerm path_;
  std::string symbol_;
  std::vector<FormulaPtr> children_;
  std::vector<Variable> variables_;
};

/// A query {x1, ..., xn | phi} (the xi must be exactly the free
/// variables of phi; checked by the evaluator).
struct Query {
  std::vector<Variable> head;
  FormulaPtr body;

  std::string ToString() const;
};

/// Variables appearing in the pieces of terms (used by range
/// restriction and the evaluator).
void CollectVariables(const DataTerm& term, std::set<Variable>* out);
void CollectVariables(const PathTerm& path, std::set<Variable>* out);

/// Persistence-root names (kName terms) a term / formula / query
/// references, anywhere — including tuple fields, function arguments
/// and nested subqueries. The sharded execution layer routes
/// statements by where these names are bound.
void CollectRootNames(const DataTerm& term, std::set<std::string>* out);
void CollectRootNames(const Formula& formula, std::set<std::string>* out);
void CollectRootNames(const Query& query, std::set<std::string>* out);

}  // namespace sgmlqdb::calculus

#endif  // SGMLQDB_CALCULUS_FORMULA_H_
