// Reference (naive) evaluator for the calculus, implementing the
// paper's semantics directly:
//  * range restriction in the style of [3]: variables must get their
//    range from a persistence root or an already-restricted variable;
//    conjuncts are ordered greedily so that generators run before
//    filters, and a query whose variables cannot be ordered is
//    rejected (§5.2 "Range-Restriction");
//  * path predicates <t P> range-restrict the variables on the path;
//    path variables are interpreted by concrete paths with no two
//    dereferences through the same class (the restricted semantics),
//    or the liberal semantics on request;
//  * interpreted predicates (contains, near) and functions (length,
//    name, first, count, text, set_to_list, ...) in the style of [3].
//
// Results are sets of tuples, one attribute per head variable (paths
// encode as path values, attribute names as strings).

#ifndef SGMLQDB_CALCULUS_EVAL_H_
#define SGMLQDB_CALCULUS_EVAL_H_

#include <map>
#include <string>

#include "base/status.h"
#include "calculus/formula.h"
#include "om/database.h"
#include "path/path.h"

namespace sgmlqdb {
class ExecGuard;
}  // namespace sgmlqdb

namespace sgmlqdb::text {
class InvertedIndex;
class TextQueryCache;
}  // namespace sgmlqdb::text

namespace sgmlqdb::rank {
class CorpusStats;
struct ScoringContext;
}  // namespace sgmlqdb::rank

namespace sgmlqdb::calculus {

struct EvalContext {
  const om::Database* db = nullptr;
  /// oid -> element inner text, as produced by the loader; powers the
  /// `text()` interpreted function and `contains` on objects. May be
  /// null (then text(oid) is an error).
  const std::map<uint64_t, std::string>* element_texts = nullptr;
  /// Positional inverted index over the same units as element_texts
  /// (unit id == element oid id). Optional; when set together with
  /// `text_cache`, `contains`/`near` on objects probe index candidate
  /// sets instead of scanning the text per row.
  const text::InvertedIndex* text_index = nullptr;
  /// Memoized compiled patterns + candidate sets (thread-safe, shared
  /// across concurrent queries). Optional; null disables memoization
  /// and index probing.
  text::TextQueryCache* text_cache = nullptr;
  /// Store version the context was built from; keys every text_cache
  /// probe, so one cache serves many epochs without a pinned
  /// statement ever observing another version's candidate sets.
  uint64_t text_epoch = 0;
  /// Keeps the snapshot behind the raw pointers above alive for the
  /// statement's whole execution, including parallel union branches
  /// (each branch copies the context, and with it this pin). Set by
  /// snapshot-aware callers (ingest::ContextFor); null for contexts
  /// over a store the caller owns.
  std::shared_ptr<const void> snapshot_pin;
  /// unit id (== element oid id) -> oid id of the document root that
  /// element was loaded under. IDREFs resolve within one document, so
  /// navigation from a root stays inside its document — which lets the
  /// algebra's IndexDocFilter discard whole documents whose units are
  /// all outside a candidate set. Optional.
  const std::map<uint64_t, uint64_t>* unit_docs = nullptr;
  /// Corpus statistics of the same snapshot (document table, field
  /// lengths, df map) — the BM25 state ranked statements score with.
  /// Immutable once published; pinned by snapshot_pin like the index.
  /// Optional (rank statements degrade to the brute scan without it).
  const rank::CorpusStats* rank_stats = nullptr;
  /// When set, ranked statements score with these statistics instead
  /// of rank_stats' own sums — the sharded service injects the
  /// cross-shard global sums here so every shard scores against the
  /// same corpus. Null means "use rank_stats locally".
  const rank::ScoringContext* rank_scoring = nullptr;
  /// Path-variable interpretation (§5.2).
  path::PathSemantics semantics = path::PathSemantics::kRestricted;
  /// Cooperative execution limiter (deadline / cancellation / budgets),
  /// probed at iteration boundaries by both engines. Shared by every
  /// thread evaluating the statement — parallel union branches observe
  /// the same guard, so tripping it stops all of them. Optional.
  ExecGuard* guard = nullptr;
};

/// A variable environment.
struct Env {
  std::map<std::string, om::Value> data;
  std::map<std::string, path::Path> paths;
  std::map<std::string, std::string> attrs;

  bool Has(const Variable& v) const;
};

/// Evaluates {x1,...,xn | phi}: a set of tuples with one attribute per
/// head variable (named after it). Fails with TypeError if the query
/// is not range-restricted, or if the head does not match phi's free
/// variables.
Result<om::Value> EvaluateQuery(const EvalContext& ctx, const Query& query);

/// Static check: can phi's variables be ordered so every one is
/// range-restricted? (Runs the same planning as the evaluator, without
/// touching data.)
Status CheckRangeRestricted(const Query& query);

/// Evaluates a closed data term (no free variables).
Result<om::Value> EvaluateClosedTerm(const EvalContext& ctx,
                                     const DataTerm& term);

/// Evaluates a data term whose variables are supplied by `env`
/// (used by the algebra's Compute operator).
Result<om::Value> EvaluateClosedTermInEnv(const EvalContext& ctx,
                                          const DataTerm& term,
                                          const Env& env);

/// Boolean check of a formula whose free variables are all bound in
/// `env` (used by the algebra's Filter operator).
Result<bool> CheckFormulaInEnv(const EvalContext& ctx, const Formula& f,
                               const Env& env);

/// `v.attr` with the paper's implicit dereferencing and implicit
/// marked-union selectors (§4.2). Soft-fails with NotFound/TypeError
/// when the attribute is unreachable. Used by the algebra's
/// index-assisted operators to evaluate navigation terms without
/// building a full environment.
Result<om::Value> SelectAttrValue(const EvalContext& ctx, const om::Value& v,
                                  const std::string& attr);

/// The text() inverse mapping (§4.2): strings are themselves, objects
/// map to their element's inner text, complex values concatenate the
/// text of their parts.
Result<om::Value> TextOfValue(const EvalContext& ctx, const om::Value& v);

}  // namespace sgmlqdb::calculus

#endif  // SGMLQDB_CALCULUS_EVAL_H_
