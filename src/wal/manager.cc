#include "wal/manager.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "base/fault_injection.h"

namespace sgmlqdb::wal {
namespace {

Status MkdirAll(const std::string& dir) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t next = dir.find('/', pos);
    if (next == std::string::npos) next = dir.size();
    prefix = dir.substr(0, next);
    pos = next + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Internal("opendir " + dir + ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

std::string SegmentName(uint32_t shard, uint64_t watermark) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(watermark) +
         ".log";
}

/// Parses "wal-<shard>-<W>.log".
bool ParseSegmentName(const std::string& name, uint32_t* shard,
                      uint64_t* watermark) {
  if (name.rfind("wal-", 0) != 0) return false;
  if (name.size() < 4 + 4 || name.substr(name.size() - 4) != ".log") {
    return false;
  }
  const std::string body = name.substr(4, name.size() - 8);
  const size_t dash = body.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= body.size()) {
    return false;
  }
  uint64_t s = 0;
  uint64_t w = 0;
  for (char c : body.substr(0, dash)) {
    if (c < '0' || c > '9') return false;
    s = s * 10 + static_cast<uint64_t>(c - '0');
  }
  for (char c : body.substr(dash + 1)) {
    if (c < '0' || c > '9') return false;
    w = w * 10 + static_cast<uint64_t>(c - '0');
  }
  *shard = static_cast<uint32_t>(s);
  *watermark = w;
  return true;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  ::closedir(d);
  return total;
}

struct Segment {
  std::string path;
  uint64_t watermark = 0;
  SegmentScan scan;
};

}  // namespace

Status Manager::OpenActiveLogs(uint64_t watermark) {
  logs_.clear();
  active_watermarks_.clear();
  for (uint32_t s = 0; s < shard_count_; ++s) {
    SGMLQDB_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardLog> log,
        ShardLog::Open(options_.data_dir + "/" + SegmentName(s, watermark),
                       options_.durable_sync));
    logs_.push_back(std::move(log));
    active_watermarks_.push_back(watermark);
  }
  return Status::OK();
}

Result<std::unique_ptr<Manager>> Manager::Open(const Options& options,
                                               uint32_t shard_count) {
  SGMLQDB_FAULT_POINT("wal.recover");
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("wal: data_dir must be set");
  }
  if (shard_count == 0) {
    return Status::InvalidArgument("wal: shard_count must be >= 1");
  }
  SGMLQDB_RETURN_IF_ERROR(MkdirAll(options.data_dir));

  auto mgr = std::unique_ptr<Manager>(new Manager(options, shard_count));
  SGMLQDB_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                           ListDir(options.data_dir));

  // -- Newest valid checkpoint (invalid ones are deleted; their
  // fallback is why two are retained). ----------------------------------
  std::vector<std::pair<uint64_t, std::string>> ckpts;  // (watermark, name)
  for (const std::string& name : entries) {
    uint64_t w = 0;
    if (ParseCheckpointDirName(name, &w)) {
      ckpts.emplace_back(w, name);
    } else if (name.rfind("ckpt-", 0) == 0) {
      // Stale tmp dir from a crashed checkpoint write.
      RemoveDirRecursive(options.data_dir + "/" + name);
    }
  }
  std::sort(ckpts.rbegin(), ckpts.rend());
  uint64_t ckpt_watermark = 0;
  for (const auto& [w, name] : ckpts) {
    if (mgr->plan_.has_checkpoint) {
      continue;  // older checkpoints stay on disk (retention trims them)
    }
    Result<CheckpointState> state =
        ReadCheckpoint(options.data_dir + "/" + name);
    if (!state.ok()) {
      RemoveDirRecursive(options.data_dir + "/" + name);
      continue;
    }
    if (state->shard_count != shard_count) {
      return Status::InvalidArgument(
          "wal: data dir was written with " +
          std::to_string(state->shard_count) + " shards, reopened with " +
          std::to_string(shard_count));
    }
    mgr->plan_.has_checkpoint = true;
    mgr->plan_.checkpoint = std::move(state).value();
    ckpt_watermark = w;
  }

  // -- Scan per-shard segments (watermark >= the checkpoint's; older
  // ones are fully covered by it). --------------------------------------
  std::vector<std::vector<Segment>> segs(shard_count);
  for (const std::string& name : entries) {
    uint32_t s = 0;
    uint64_t w = 0;
    if (!ParseSegmentName(name, &s, &w)) continue;
    if (s >= shard_count) {
      return Status::InvalidArgument(
          "wal: segment " + name + " names shard " + std::to_string(s) +
          " but the store has " + std::to_string(shard_count));
    }
    if (w < ckpt_watermark) continue;
    Segment seg;
    seg.path = options.data_dir + "/" + name;
    seg.watermark = w;
    SGMLQDB_ASSIGN_OR_RETURN(seg.scan, ScanSegment(seg.path));
    segs[s].push_back(std::move(seg));
  }
  for (auto& shard_segs : segs) {
    std::sort(shard_segs.begin(), shard_segs.end(),
              [](const Segment& a, const Segment& b) {
                return a.watermark < b.watermark;
              });
  }

  // -- Flatten each shard's stream; a torn mid-sequence segment ends
  // the shard's stream there (later segments are unreachable). ----------
  struct Cursor {
    std::vector<const WalRecord*> records;
    size_t next = 0;
    const WalRecord* head() const {
      return next < records.size() ? records[next] : nullptr;
    }
  };
  std::vector<Cursor> cursors(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    for (const Segment& seg : segs[s]) {
      for (const WalRecord& r : seg.scan.records) {
        cursors[s].records.push_back(&r);
      }
      mgr->recovery_stats_.torn_records_truncated += seg.scan.torn_records;
      if (seg.scan.torn_records != 0) break;
    }
  }

  // The DTD record (batch_seq 0, shard 0) precedes every batch. The
  // checkpoint's copy wins when both exist (same text by contract).
  if (mgr->plan_.has_checkpoint) {
    mgr->plan_.has_dtd = true;
    mgr->plan_.dtd_text = mgr->plan_.checkpoint.dtd_text;
  }
  if (cursors[0].head() != nullptr &&
      cursors[0].head()->type == WalRecord::Type::kDtd) {
    if (!mgr->plan_.has_dtd) {
      mgr->plan_.has_dtd = true;
      mgr->plan_.dtd_text = cursors[0].head()->dtd_text;
    }
    cursors[0].next++;
  }

  // -- Consistent prefix: batch b is recoverable iff every shard in
  // its touched set holds it. Logged batch_seqs are consecutive, so
  // the walk stops at the first gap or incomplete batch. ----------------
  uint64_t last_good = ckpt_watermark;
  for (;;) {
    const uint64_t b = last_good + 1;
    const WalRecord* rec = nullptr;
    for (uint32_t s = 0; s < shard_count && rec == nullptr; ++s) {
      const WalRecord* head = cursors[s].head();
      if (head != nullptr && head->type == WalRecord::Type::kBatch &&
          head->batch_seq == b) {
        rec = head;
      }
    }
    if (rec == nullptr) break;
    if (rec->shard_count != shard_count) {
      return Status::InvalidArgument(
          "wal: batch " + std::to_string(b) + " was logged at " +
          std::to_string(rec->shard_count) + " shards, reopened with " +
          std::to_string(shard_count));
    }
    bool complete = true;
    for (uint32_t s : rec->touched) {
      const WalRecord* head =
          s < shard_count ? cursors[s].head() : nullptr;
      if (head == nullptr || head->batch_seq != b) {
        complete = false;
        break;
      }
    }
    if (!complete) break;
    for (uint32_t s : rec->touched) cursors[s].next++;
    mgr->plan_.batches.push_back(*rec);
    last_good = b;
  }

  // -- Physical truncation: cut each shard's newest reachable segment
  // back to its last kept record; delete segments past the cut. ---------
  for (uint32_t s = 0; s < shard_count; ++s) {
    bool cut = false;
    for (const Segment& seg : segs[s]) {
      if (cut) {
        mgr->recovery_stats_.torn_records_truncated +=
            seg.scan.records.size();
        ::unlink(seg.path.c_str());
        continue;
      }
      uint64_t keep = 0;
      size_t kept = 0;
      for (size_t j = 0; j < seg.scan.records.size(); ++j) {
        if (seg.scan.records[j].batch_seq > last_good) break;
        keep = seg.scan.record_ends[j];
        kept = j + 1;
      }
      if (kept < seg.scan.records.size() || keep < seg.scan.file_bytes) {
        mgr->recovery_stats_.torn_records_truncated +=
            seg.scan.records.size() - kept;
        SGMLQDB_RETURN_IF_ERROR(TruncateFile(seg.path, keep));
        cut = true;
      }
    }
  }

  mgr->last_batch_seq_ = last_good;
  mgr->last_checkpoint_batch_seq_ = ckpt_watermark;
  if (mgr->plan_.has_checkpoint) {
    mgr->checkpoints_written_ = 0;  // counts this process's writes only
    mgr->checkpoint_bytes_ = DirBytes(options.data_dir + "/" +
                                      CheckpointDirName(ckpt_watermark));
    for (const CheckpointShard& shard : mgr->plan_.checkpoint.shards) {
      mgr->recovery_stats_.checkpoint_epoch =
          std::max(mgr->recovery_stats_.checkpoint_epoch, shard.epoch);
    }
  }
  mgr->recovery_stats_.checkpoint_batch_seq = ckpt_watermark;
  mgr->recovery_stats_.wal_batches_replayed = mgr->plan_.batches.size();
  mgr->recovery_stats_.recovered =
      mgr->plan_.has_dtd || mgr->plan_.has_checkpoint;

  // Active segment per shard: the newest surviving one, or a fresh
  // segment at the checkpoint watermark. Per-shard watermarks can
  // differ after a crash mid-rotation; appends always go to the
  // newest, which keeps the segment naming invariant (records in
  // wal-<W> have batch_seq > W).
  for (uint32_t s = 0; s < shard_count; ++s) {
    uint64_t watermark = ckpt_watermark;
    for (const Segment& seg : segs[s]) {
      struct stat st{};
      if (::stat(seg.path.c_str(), &st) == 0) {
        watermark = std::max(watermark, seg.watermark);
      }
    }
    SGMLQDB_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardLog> log,
        ShardLog::Open(options.data_dir + "/" + SegmentName(s, watermark),
                       options.durable_sync));
    mgr->logs_.push_back(std::move(log));
    mgr->active_watermarks_.push_back(watermark);
  }
  return mgr;
}

Status Manager::LogDtd(std::string_view dtd_text) {
  if (!journaling_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) return Status::Internal("wal is poisoned");
  WalRecord record;
  record.type = WalRecord::Type::kDtd;
  record.batch_seq = 0;
  record.shard_count = shard_count_;
  record.dtd_text = std::string(dtd_text);
  const uint64_t pre = logs_[0]->size();
  Status st = logs_[0]->Append(EncodeRecordPayload(record));
  if (st.ok()) st = logs_[0]->Sync();
  if (!st.ok()) {
    if (!logs_[0]->TruncateTo(pre).ok()) poisoned_ = true;
    return st;
  }
  records_appended_++;
  syncs_++;
  return Status::OK();
}

Status Manager::LogBatch(const std::vector<LoggedOp>& ops,
                         const std::vector<uint32_t>& touched,
                         uint64_t doc_seq_after, uint64_t epoch_hint) {
  if (!journaling_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) return Status::Internal("wal is poisoned");
  if (touched.empty()) return Status::OK();

  WalRecord record;
  record.type = WalRecord::Type::kBatch;
  record.batch_seq = last_batch_seq_ + 1;
  record.doc_seq_after = doc_seq_after;
  uint64_t consumed = 0;
  for (const LoggedOp& op : ops) {
    if (op.kind == LoggedOp::Kind::kLoad ||
        op.kind == LoggedOp::Kind::kReplace) {
      consumed++;
    }
  }
  record.doc_seq_before = doc_seq_after - consumed;
  record.epoch = epoch_hint;
  record.shard_count = shard_count_;
  record.touched = touched;
  std::sort(record.touched.begin(), record.touched.end());
  record.ops = ops;
  const std::string payload = EncodeRecordPayload(record);

  std::vector<uint64_t> pre_sizes;
  pre_sizes.reserve(record.touched.size());
  for (uint32_t s : record.touched) {
    if (s >= shard_count_) {
      return Status::InvalidArgument("wal: touched shard out of range");
    }
    pre_sizes.push_back(logs_[s]->size());
  }

  auto repair = [&]() {
    for (size_t i = 0; i < record.touched.size(); ++i) {
      if (!logs_[record.touched[i]]->TruncateTo(pre_sizes[i]).ok()) {
        poisoned_ = true;
      }
    }
  };
  for (uint32_t s : record.touched) {
    Status st = logs_[s]->Append(payload);
    if (!st.ok()) {
      repair();
      return st;
    }
  }
  for (uint32_t s : record.touched) {
    Status st = logs_[s]->Sync();
    if (!st.ok()) {
      // Some siblings may already be durable; cutting all of them back
      // keeps the batch all-or-nothing on disk.
      repair();
      return st;
    }
    syncs_++;
  }
  last_batch_seq_ = record.batch_seq;
  batches_logged_++;
  records_appended_ += record.touched.size();
  return Status::OK();
}

Status Manager::Checkpoint(CheckpointState state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) return Status::Internal("wal is poisoned");
  state.batch_seq = last_batch_seq_;
  state.shard_count = shard_count_;
  SGMLQDB_RETURN_IF_ERROR(WriteCheckpoint(options_.data_dir, state));

  // Rotate: new records land in segments named by the new watermark,
  // so replay from this checkpoint never re-reads older segments.
  for (uint32_t s = 0; s < shard_count_; ++s) {
    if (active_watermarks_[s] == state.batch_seq) continue;
    SGMLQDB_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardLog> log,
        ShardLog::Open(
            options_.data_dir + "/" + SegmentName(s, state.batch_seq),
            options_.durable_sync));
    logs_[s] = std::move(log);
    active_watermarks_[s] = state.batch_seq;
  }

  checkpoints_written_++;
  last_checkpoint_batch_seq_ = state.batch_seq;
  checkpoint_bytes_ = DirBytes(options_.data_dir + "/" +
                               CheckpointDirName(state.batch_seq));
  return ApplyRetention();
}

Status Manager::ApplyRetention() {
  SGMLQDB_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                           ListDir(options_.data_dir));
  std::vector<uint64_t> watermarks;
  for (const std::string& name : entries) {
    uint64_t w = 0;
    if (ParseCheckpointDirName(name, &w)) watermarks.push_back(w);
  }
  std::sort(watermarks.rbegin(), watermarks.rend());
  const uint32_t keep = options_.keep_checkpoints == 0
                            ? 1
                            : options_.keep_checkpoints;
  if (watermarks.size() <= keep) return Status::OK();
  const uint64_t min_keep = watermarks[keep - 1];
  for (const std::string& name : entries) {
    uint64_t w = 0;
    if (ParseCheckpointDirName(name, &w) && w < min_keep) {
      RemoveDirRecursive(options_.data_dir + "/" + name);
      continue;
    }
    uint32_t s = 0;
    if (ParseSegmentName(name, &s, &w) && w < min_keep) {
      // Records <= min_keep are covered by the oldest kept checkpoint;
      // a segment below its watermark holds nothing newer (rotation
      // happens at every checkpoint).
      ::unlink((options_.data_dir + "/" + name).c_str());
    }
  }
  return Status::OK();
}

WalStats Manager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats stats;
  stats.batches_logged = batches_logged_;
  stats.records_appended = records_appended_;
  stats.syncs = syncs_;
  for (const auto& log : logs_) stats.wal_bytes += log->size();
  stats.checkpoints_written = checkpoints_written_;
  stats.last_checkpoint_batch_seq = last_checkpoint_batch_seq_;
  stats.checkpoint_bytes = checkpoint_bytes_;
  stats.durable_sync = options_.durable_sync;
  stats.poisoned = poisoned_;
  return stats;
}

}  // namespace sgmlqdb::wal
