// wal::Manager — the durability orchestrator one store facade owns.
//
// Layout of a data dir (one per store):
//
//   wal-<shard>-<W>.log   per-shard log segments; a segment named
//                         with watermark W holds only records with
//                         batch_seq > W; rotation happens at each
//                         checkpoint
//   ckpt-<W>/             whole-epoch checkpoints (see checkpoint.h)
//
// Write path (the facade's single-writer latch already serializes
// callers): a batch is applied to the shards' COW sessions first,
// then LogBatch appends the *facade-level* record — the full batch —
// to every touched shard's log and fsyncs them all, and only then
// does the caller publish. fsync-before-publish is the contract: a
// published (acked) epoch is always recoverable. A batch whose ops
// failed to apply is never logged at all.
//
// Writing the whole batch to every touched shard (instead of
// per-shard slices) buys exact replay: recovery re-runs the original
// facade Ingest with the restored document-sequence counter, so
// routing, oid blocks and name homes reproduce bit-for-bit. The
// redundancy is bounded by the batch size times its touched-shard
// count.
//
// Recovery point: batch b is recoverable iff *every* shard in its
// touched set holds a valid record for b — the cross-shard consistent
// prefix, mirroring the atomic epoch-vector publish. The scan walks
// batch_seq upward from the checkpoint watermark; the first gap or
// torn record ends the prefix, and everything past it is physically
// truncated (torn tails are expected crash artifacts, never fatal).
//
// A LogBatch failure mid-append (fault injection, disk error) repairs
// by truncating every touched log back to its pre-batch offset; if
// the repair itself fails the manager is poisoned and every later
// durable write errors (the store stays queryable, just not durably
// writable).

#ifndef SGMLQDB_WAL_MANAGER_H_
#define SGMLQDB_WAL_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "wal/checkpoint.h"
#include "wal/format.h"
#include "wal/log.h"

namespace sgmlqdb::wal {

struct Options {
  std::string data_dir;
  /// False skips every fsync (the `durability=off` bench knob):
  /// records still reach the kernel, but a crash may lose acked
  /// batches.
  bool durable_sync = true;
  /// Checkpoints retained after a new one lands. Two, so a checkpoint
  /// that fails validation on recovery still has a fallback (the log
  /// segments it needs are retained with it).
  uint32_t keep_checkpoints = 2;
};

/// What startup recovery found and did (surfaced in /stats).
struct RecoveryStats {
  bool recovered = false;  // true if any prior state was found
  uint64_t checkpoint_batch_seq = 0;
  uint64_t checkpoint_epoch = 0;  // max shard epoch in the checkpoint
  uint64_t wal_batches_replayed = 0;
  uint64_t torn_records_truncated = 0;
  uint64_t recovery_ms = 0;    // filled by the recovery driver
  uint64_t docs_recovered = 0; // filled by the recovery driver
};

/// Live write-side counters (surfaced in /stats).
struct WalStats {
  uint64_t batches_logged = 0;
  uint64_t records_appended = 0;
  uint64_t syncs = 0;
  uint64_t wal_bytes = 0;  // sum of active segment sizes
  uint64_t checkpoints_written = 0;
  uint64_t last_checkpoint_batch_seq = 0;
  uint64_t checkpoint_bytes = 0;  // newest checkpoint's footprint
  bool durable_sync = true;
  bool poisoned = false;
};

/// The state Manager::Open reconstructed, for the store layer to
/// apply: DTD, newest valid checkpoint, and the consistent-prefix
/// batch records to replay (facade batches, in order).
struct RecoveryPlan {
  bool has_dtd = false;
  std::string dtd_text;
  bool has_checkpoint = false;
  CheckpointState checkpoint;
  std::vector<WalRecord> batches;
};

class Manager {
 public:
  /// Opens (creating if needed) a data dir for a store with
  /// `shard_count` shards, scans checkpoints + logs, computes the
  /// consistent recovery prefix, truncates torn/unrecoverable tails,
  /// and leaves the plan in plan() for the store layer to apply.
  /// Refuses a dir previously written at a different shard count.
  /// Journaling starts disabled (replay must not re-log itself);
  /// EnableJournal() after the plan is applied.
  static Result<std::unique_ptr<Manager>> Open(const Options& options,
                                               uint32_t shard_count);

  const RecoveryPlan& plan() const { return plan_; }
  RecoveryStats& recovery_stats() { return recovery_stats_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  void EnableJournal() { journaling_ = true; }
  bool journaling() const { return journaling_; }

  /// Journals the DTD (batch_seq 0, shard 0's log) and fsyncs.
  Status LogDtd(std::string_view dtd_text);

  /// Journals one facade batch: writes the full op list to every
  /// shard in `touched`, fsyncs them all, then advances the batch
  /// sequence. `doc_seq_after` is the facade document-sequence
  /// counter after the batch (restored before replay); `epoch_hint`
  /// is informational. Call between apply-success and publish.
  Status LogBatch(const std::vector<LoggedOp>& ops,
                  const std::vector<uint32_t>& touched,
                  uint64_t doc_seq_after, uint64_t epoch_hint);

  /// Writes `state` as the new checkpoint at the current batch
  /// watermark (Manager fills batch_seq), rotates every shard's log
  /// segment, and applies retention (keep_checkpoints newest + the
  /// segments they need). Caller must hold the facade writer latch.
  Status Checkpoint(CheckpointState state);

  WalStats stats() const;

  uint64_t last_batch_seq() const { return last_batch_seq_; }
  uint32_t shard_count() const { return shard_count_; }
  const Options& options() const { return options_; }

 private:
  Manager(Options options, uint32_t shard_count)
      : options_(std::move(options)), shard_count_(shard_count) {}

  Status OpenActiveLogs(uint64_t watermark);
  Status ApplyRetention();

  Options options_;
  uint32_t shard_count_;
  std::vector<std::unique_ptr<ShardLog>> logs_;  // active segment/shard
  std::vector<uint64_t> active_watermarks_;
  uint64_t last_batch_seq_ = 0;
  bool journaling_ = false;
  bool poisoned_ = false;
  RecoveryPlan plan_;
  RecoveryStats recovery_stats_;
  mutable std::mutex mu_;  // guards logs_/counters (belt: callers
                           // already serialize on the writer latch)
  uint64_t batches_logged_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t syncs_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t last_checkpoint_batch_seq_ = 0;
  uint64_t checkpoint_bytes_ = 0;
};

}  // namespace sgmlqdb::wal

#endif  // SGMLQDB_WAL_MANAGER_H_
