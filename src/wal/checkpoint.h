// Whole-epoch checkpoints.
//
// A checkpoint is a directory `ckpt-<W>` (W = the facade batch_seq
// watermark it captures) inside the data dir:
//
//   ckpt-<W>/manifest       one framed+CRC'd metadata record:
//                           batch_seq, doc_seq, shard_count, DTD
//                           text, declared names, and per shard
//                           {epoch, next_oid, doc_count}
//   ckpt-<W>/shard-<i>.docs framed WalRecord(kDoc) per document, in
//                           persistence-root list order, each holding
//                           one kLoad op {name, oid_base, exported
//                           SGML} — the proven export round-trip is
//                           the serialization format
//
// Writes are atomic: everything lands in `ckpt-<W>.tmp`, every file
// is fsync'd, the directory is renamed into place, and the parent
// directory is fsync'd. Readers validate counts and CRCs; any
// mismatch makes the whole checkpoint invalid (the manager falls back
// to the next-newest one — which is why two are retained).
//
// Fault point: `wal.checkpoint` fires before any byte is written.

#ifndef SGMLQDB_WAL_CHECKPOINT_H_
#define SGMLQDB_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace sgmlqdb::wal {

struct CheckpointDoc {
  std::string name;    // persistence name ("" if unnamed)
  uint64_t oid_base;   // first oid of the document's block (0 = none)
  std::string sgml;    // exported document text
};

struct CheckpointShard {
  uint64_t epoch = 0;
  uint64_t next_oid = 0;  // preserves oid gaps left by removed docs
  std::vector<CheckpointDoc> docs;
};

struct CheckpointState {
  uint64_t batch_seq = 0;  // WAL watermark: replay records > this
  uint64_t doc_seq = 0;    // facade document sequence counter
  uint32_t shard_count = 1;
  std::string dtd_text;
  std::vector<std::string> declared_names;  // facade declaration order
  std::vector<CheckpointShard> shards;
};

/// Atomically writes `state` as `<data_dir>/ckpt-<batch_seq>`.
Status WriteCheckpoint(const std::string& data_dir,
                       const CheckpointState& state);

/// Reads and fully validates one checkpoint directory.
Result<CheckpointState> ReadCheckpoint(const std::string& ckpt_dir);

/// Name of the checkpoint directory for a watermark ("ckpt-42").
std::string CheckpointDirName(uint64_t batch_seq);

/// Parses "ckpt-<W>" → W; false for anything else (incl. .tmp dirs).
bool ParseCheckpointDirName(const std::string& name, uint64_t* batch_seq);

/// Best-effort recursive delete (invalid checkpoints, stale tmp dirs).
void RemoveDirRecursive(const std::string& dir);

}  // namespace sgmlqdb::wal

#endif  // SGMLQDB_WAL_CHECKPOINT_H_
