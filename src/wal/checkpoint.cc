#include "wal/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/fault_injection.h"
#include "wal/format.h"

namespace sgmlqdb::wal {
namespace {

constexpr uint32_t kManifestMagic = 0x53514B31;  // "SQK1"
constexpr uint32_t kMaxCount = 1u << 24;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return IoError("open", path);
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = IoError("write", path);
      ::close(fd);
      return err;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status err = IoError("fsync", path);
    ::close(fd);
    return err;
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("open dir", dir);
  Status st;
  if (::fsync(fd) != 0) st = IoError("fsync dir", dir);
  ::close(fd);
  return st;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("open", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return IoError("read", path);
  return buf.str();
}

std::string EncodeManifest(const CheckpointState& state) {
  std::string out;
  PutU32(&out, kManifestMagic);
  PutU64(&out, state.batch_seq);
  PutU64(&out, state.doc_seq);
  PutU32(&out, state.shard_count);
  PutString(&out, state.dtd_text);
  PutU32(&out, static_cast<uint32_t>(state.declared_names.size()));
  for (const std::string& name : state.declared_names) PutString(&out, name);
  for (const CheckpointShard& shard : state.shards) {
    PutU64(&out, shard.epoch);
    PutU64(&out, shard.next_oid);
    PutU32(&out, static_cast<uint32_t>(shard.docs.size()));
  }
  return out;
}

Result<CheckpointState> DecodeManifest(std::string_view payload) {
  auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("checkpoint manifest: ") +
                                   what);
  };
  CheckpointState state;
  size_t off = 0;
  uint32_t magic = 0;
  if (!GetU32(payload, &off, &magic) || magic != kManifestMagic) {
    return corrupt("bad magic");
  }
  if (!GetU64(payload, &off, &state.batch_seq) ||
      !GetU64(payload, &off, &state.doc_seq) ||
      !GetU32(payload, &off, &state.shard_count)) {
    return corrupt("truncated header");
  }
  if (state.shard_count == 0 || state.shard_count > kMaxCount) {
    return corrupt("bad shard count");
  }
  if (!GetString(payload, &off, &state.dtd_text)) {
    return corrupt("truncated dtd");
  }
  uint32_t name_count = 0;
  if (!GetU32(payload, &off, &name_count) || name_count > kMaxCount) {
    return corrupt("bad name count");
  }
  state.declared_names.resize(name_count);
  for (uint32_t i = 0; i < name_count; ++i) {
    if (!GetString(payload, &off, &state.declared_names[i])) {
      return corrupt("truncated name");
    }
  }
  state.shards.resize(state.shard_count);
  for (CheckpointShard& shard : state.shards) {
    uint32_t doc_count = 0;
    if (!GetU64(payload, &off, &shard.epoch) ||
        !GetU64(payload, &off, &shard.next_oid) ||
        !GetU32(payload, &off, &doc_count) || doc_count > kMaxCount) {
      return corrupt("truncated shard entry");
    }
    shard.docs.resize(doc_count);
  }
  if (off != payload.size()) return corrupt("trailing bytes");
  return state;
}

}  // namespace

std::string CheckpointDirName(uint64_t batch_seq) {
  return "ckpt-" + std::to_string(batch_seq);
}

void RemoveDirRecursive(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::string child = dir + "/" + name;
      struct stat st{};
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveDirRecursive(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

bool ParseCheckpointDirName(const std::string& name, uint64_t* batch_seq) {
  if (name.rfind("ckpt-", 0) != 0) return false;
  const std::string digits = name.substr(5);
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *batch_seq = value;
  return true;
}

Status WriteCheckpoint(const std::string& data_dir,
                       const CheckpointState& state) {
  SGMLQDB_FAULT_POINT("wal.checkpoint");
  if (state.shards.size() != state.shard_count) {
    return Status::InvalidArgument("checkpoint shard vector size mismatch");
  }
  const std::string final_dir =
      data_dir + "/" + CheckpointDirName(state.batch_seq);
  const std::string tmp_dir = final_dir + ".tmp";
  RemoveDirRecursive(tmp_dir);  // stale tmp from an earlier crash
  if (::mkdir(tmp_dir.c_str(), 0755) != 0) return IoError("mkdir", tmp_dir);

  std::string manifest;
  AppendFramed(&manifest, EncodeManifest(state));
  SGMLQDB_RETURN_IF_ERROR(WriteFileDurable(tmp_dir + "/manifest", manifest));

  for (uint32_t i = 0; i < state.shard_count; ++i) {
    std::string docs;
    for (const CheckpointDoc& doc : state.shards[i].docs) {
      WalRecord record;
      record.type = WalRecord::Type::kDoc;
      record.batch_seq = state.batch_seq;
      record.shard_count = state.shard_count;
      LoggedOp op;
      op.kind = LoggedOp::Kind::kLoad;
      op.name = doc.name;
      op.sgml = doc.sgml;
      op.oid_base = doc.oid_base;
      record.ops.push_back(std::move(op));
      AppendFramed(&docs, EncodeRecordPayload(record));
    }
    SGMLQDB_RETURN_IF_ERROR(WriteFileDurable(
        tmp_dir + "/shard-" + std::to_string(i) + ".docs", docs));
  }

  SGMLQDB_RETURN_IF_ERROR(SyncDir(tmp_dir));
  if (::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
    // A same-watermark checkpoint already published is equivalent; any
    // other rename failure leaves only the tmp dir (ignored on scan).
    RemoveDirRecursive(final_dir);
    if (::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
      return IoError("rename", final_dir);
    }
  }
  return SyncDir(data_dir);
}

Result<CheckpointState> ReadCheckpoint(const std::string& ckpt_dir) {
  SGMLQDB_ASSIGN_OR_RETURN(std::string manifest_bytes,
                           ReadWholeFile(ckpt_dir + "/manifest"));
  size_t off = 0;
  std::string_view payload;
  if (ReadFramed(manifest_bytes, &off, &payload) != FrameOutcome::kOk ||
      off != manifest_bytes.size()) {
    return Status::InvalidArgument("checkpoint manifest: torn or trailing");
  }
  SGMLQDB_ASSIGN_OR_RETURN(CheckpointState state, DecodeManifest(payload));

  for (uint32_t i = 0; i < state.shard_count; ++i) {
    const std::string path = ckpt_dir + "/shard-" + std::to_string(i) +
                             ".docs";
    SGMLQDB_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    size_t doc_off = 0;
    size_t loaded = 0;
    for (;;) {
      std::string_view doc_payload;
      FrameOutcome outcome = ReadFramed(bytes, &doc_off, &doc_payload);
      if (outcome == FrameOutcome::kEnd) break;
      if (outcome == FrameOutcome::kTorn) {
        return Status::InvalidArgument("checkpoint docs: torn frame in " +
                                       path);
      }
      SGMLQDB_ASSIGN_OR_RETURN(WalRecord record,
                               DecodeRecordPayload(doc_payload));
      if (record.type != WalRecord::Type::kDoc || record.ops.size() != 1 ||
          record.ops[0].kind != LoggedOp::Kind::kLoad) {
        return Status::InvalidArgument("checkpoint docs: bad record in " +
                                       path);
      }
      if (loaded >= state.shards[i].docs.size()) {
        return Status::InvalidArgument("checkpoint docs: extra docs in " +
                                       path);
      }
      CheckpointDoc& doc = state.shards[i].docs[loaded++];
      doc.name = std::move(record.ops[0].name);
      doc.sgml = std::move(record.ops[0].sgml);
      doc.oid_base = record.ops[0].oid_base;
    }
    if (loaded != state.shards[i].docs.size()) {
      return Status::InvalidArgument("checkpoint docs: doc count mismatch in " +
                                     path);
    }
  }
  return state;
}

}  // namespace sgmlqdb::wal
