#include "wal/format.h"

#include <array>
#include <cstring>

namespace sgmlqdb::wal {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

// Limits that keep decode strict without constraining real data: a
// single logged document tops out far below 1 GiB, and a batch far
// below a million ops; anything larger is corruption, not input.
constexpr uint32_t kMaxStringLen = 1u << 30;
constexpr uint32_t kMaxListLen = 1u << 20;

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  const auto& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char ch : bytes) {
    c = table[(c ^ ch) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool GetU8(std::string_view buf, size_t* off, uint8_t* v) {
  if (buf.size() - *off < 1 || *off > buf.size()) return false;
  *v = static_cast<uint8_t>(buf[*off]);
  *off += 1;
  return true;
}

bool GetU32(std::string_view buf, size_t* off, uint32_t* v) {
  if (*off > buf.size() || buf.size() - *off < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(buf[*off + i]))
         << (8 * i);
  }
  *v = r;
  *off += 4;
  return true;
}

bool GetU64(std::string_view buf, size_t* off, uint64_t* v) {
  if (*off > buf.size() || buf.size() - *off < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(buf[*off + i]))
         << (8 * i);
  }
  *v = r;
  *off += 8;
  return true;
}

bool GetString(std::string_view buf, size_t* off, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(buf, off, &len)) return false;
  if (len > kMaxStringLen) return false;
  if (*off > buf.size() || buf.size() - *off < len) return false;
  s->assign(buf.data() + *off, len);
  *off += len;
  return true;
}

std::string EncodeRecordPayload(const WalRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(record.type));
  PutU64(&out, record.batch_seq);
  PutU64(&out, record.doc_seq_before);
  PutU64(&out, record.doc_seq_after);
  PutU64(&out, record.epoch);
  PutU32(&out, record.shard_count);
  PutU32(&out, static_cast<uint32_t>(record.touched.size()));
  for (uint32_t shard : record.touched) PutU32(&out, shard);
  PutString(&out, record.dtd_text);
  PutU32(&out, static_cast<uint32_t>(record.ops.size()));
  for (const LoggedOp& op : record.ops) {
    PutU8(&out, static_cast<uint8_t>(op.kind));
    PutString(&out, op.name);
    PutString(&out, op.sgml);
    PutU64(&out, op.oid_base);
  }
  return out;
}

Result<WalRecord> DecodeRecordPayload(std::string_view payload) {
  auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("wal record: ") + what);
  };
  WalRecord record;
  size_t off = 0;
  uint8_t type = 0;
  if (!GetU8(payload, &off, &type)) return corrupt("truncated type");
  if (type != static_cast<uint8_t>(WalRecord::Type::kDtd) &&
      type != static_cast<uint8_t>(WalRecord::Type::kBatch) &&
      type != static_cast<uint8_t>(WalRecord::Type::kDoc)) {
    return corrupt("unknown record type");
  }
  record.type = static_cast<WalRecord::Type>(type);
  if (!GetU64(payload, &off, &record.batch_seq)) {
    return corrupt("truncated batch_seq");
  }
  if (!GetU64(payload, &off, &record.doc_seq_before)) {
    return corrupt("truncated doc_seq_before");
  }
  if (!GetU64(payload, &off, &record.doc_seq_after)) {
    return corrupt("truncated doc_seq_after");
  }
  if (!GetU64(payload, &off, &record.epoch)) {
    return corrupt("truncated epoch");
  }
  if (!GetU32(payload, &off, &record.shard_count)) {
    return corrupt("truncated shard_count");
  }
  uint32_t touched_count = 0;
  if (!GetU32(payload, &off, &touched_count) || touched_count > kMaxListLen) {
    return corrupt("bad touched list");
  }
  record.touched.reserve(touched_count);
  for (uint32_t i = 0; i < touched_count; ++i) {
    uint32_t shard = 0;
    if (!GetU32(payload, &off, &shard)) return corrupt("truncated touched");
    record.touched.push_back(shard);
  }
  if (!GetString(payload, &off, &record.dtd_text)) {
    return corrupt("truncated dtd_text");
  }
  uint32_t op_count = 0;
  if (!GetU32(payload, &off, &op_count) || op_count > kMaxListLen) {
    return corrupt("bad op list");
  }
  record.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    LoggedOp op;
    uint8_t kind = 0;
    if (!GetU8(payload, &off, &kind)) return corrupt("truncated op kind");
    if (kind > static_cast<uint8_t>(LoggedOp::Kind::kRemoveRoot)) {
      return corrupt("unknown op kind");
    }
    op.kind = static_cast<LoggedOp::Kind>(kind);
    if (!GetString(payload, &off, &op.name)) return corrupt("truncated name");
    if (!GetString(payload, &off, &op.sgml)) return corrupt("truncated sgml");
    if (!GetU64(payload, &off, &op.oid_base)) {
      return corrupt("truncated oid_base");
    }
    record.ops.push_back(std::move(op));
  }
  if (off != payload.size()) return corrupt("trailing bytes");
  return record;
}

void AppendFramed(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

FrameOutcome ReadFramed(std::string_view buf, size_t* offset,
                        std::string_view* payload) {
  const size_t start = *offset;
  if (start == buf.size()) return FrameOutcome::kEnd;
  size_t off = start;
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!GetU32(buf, &off, &len) || !GetU32(buf, &off, &crc)) {
    return FrameOutcome::kTorn;
  }
  if (len > buf.size() || buf.size() - off < len) return FrameOutcome::kTorn;
  std::string_view body(buf.data() + off, len);
  if (Crc32(body) != crc) return FrameOutcome::kTorn;
  *payload = body;
  *offset = off + len;
  return FrameOutcome::kOk;
}

}  // namespace sgmlqdb::wal
