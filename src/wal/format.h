// On-disk record format of the write-ahead log and the checkpoint
// files (the durable-epochs layer; see README "Durability").
//
// Everything durable is a *framed record*:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// little-endian, CRC-32 (IEEE, reflected) over the payload only. The
// frame is what makes torn tails detectable: a crash mid-write leaves
// either a short header, a short payload, or a payload whose CRC does
// not match — all three classified as a torn tail, never as data.
//
// A payload is one WalRecord:
//
//   u8  type            (kDtd | kBatch | kDoc)
//   u64 batch_seq       facade-level batch sequence number
//   u64 doc_seq_before  facade document sequence when the batch
//                       started planning (failed batches consume
//                       sequence numbers without being logged, so
//                       replay must restore this before re-routing)
//   u64 doc_seq_after   facade document sequence after this batch
//   u64 epoch           shard epoch this record publishes as (info)
//   u32 shard_count     facade shard count at write time (recovery
//                       refuses a dir reopened at a different count)
//   u32 touched[]       shards this batch wrote (completeness check)
//   str dtd_text        (kDtd only)
//   ops[]               (kBatch: this shard's slice, in apply order;
//                        kDoc: exactly one kLoad per checkpoint doc)
//
// A LoggedOp mirrors one IngestSession verb so recovery replays the
// exact apply sequence:
//
//   u8  kind   (kLoad | kReplace | kRemove | kDeclare | kRemoveRoot)
//   str name   persistence name ("" for unnamed loads)
//   str sgml   document text ("" for removes/declares)
//   u64 oid_base  oid-block base for loads/replaces (0 = continue
//                 numbering); root oid for kRemoveRoot
//
// Strings are u32-length-prefixed bytes. Decoding is strict: trailing
// bytes, truncated fields and unknown enum values are all errors (a
// record that decodes is byte-exact).

#ifndef SGMLQDB_WAL_FORMAT_H_
#define SGMLQDB_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace sgmlqdb::wal {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
/// classic zlib checksum, implemented locally so the WAL has no
/// dependency the container may lack.
uint32_t Crc32(std::string_view bytes);

/// One journaled mutation (an IngestSession verb).
struct LoggedOp {
  enum class Kind : uint8_t {
    kLoad = 0,
    kReplace = 1,
    kRemove = 2,
    kDeclare = 3,
    kRemoveRoot = 4,
  };
  Kind kind = Kind::kLoad;
  std::string name;
  std::string sgml;
  uint64_t oid_base = 0;
};

struct WalRecord {
  enum class Type : uint8_t {
    kDtd = 1,
    kBatch = 2,
    kDoc = 3,
  };
  Type type = Type::kBatch;
  uint64_t batch_seq = 0;
  uint64_t doc_seq_before = 0;
  uint64_t doc_seq_after = 0;
  uint64_t epoch = 0;
  uint32_t shard_count = 1;
  std::vector<uint32_t> touched;
  std::string dtd_text;
  std::vector<LoggedOp> ops;
};

std::string EncodeRecordPayload(const WalRecord& record);
Result<WalRecord> DecodeRecordPayload(std::string_view payload);

/// Appends [len][crc][payload] to `out`.
void AppendFramed(std::string* out, std::string_view payload);

/// Outcome of pulling one framed record off a byte stream.
enum class FrameOutcome {
  kOk,    // *payload set, *offset advanced past the frame
  kTorn,  // truncated header/payload or CRC mismatch: a torn tail
  kEnd,   // exactly at end of stream
};

/// Reads the frame at `*offset`. On kOk advances *offset and points
/// *payload into `buf`; on kTorn/kEnd leaves *offset at the frame
/// start (the truncation point for a torn tail).
FrameOutcome ReadFramed(std::string_view buf, size_t* offset,
                        std::string_view* payload);

// -- Low-level little-endian primitives (shared with the checkpoint
// manifest encoder) ----------------------------------------------------
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);
bool GetU8(std::string_view buf, size_t* off, uint8_t* v);
bool GetU32(std::string_view buf, size_t* off, uint32_t* v);
bool GetU64(std::string_view buf, size_t* off, uint64_t* v);
bool GetString(std::string_view buf, size_t* off, std::string* s);

}  // namespace sgmlqdb::wal

#endif  // SGMLQDB_WAL_FORMAT_H_
