#include "wal/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/fault_injection.h"

namespace sgmlqdb::wal {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ShardLog>> ShardLog::Open(const std::string& path,
                                                 bool durable) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return IoError("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = IoError("fstat", path);
    ::close(fd);
    return err;
  }
  return std::unique_ptr<ShardLog>(
      new ShardLog(path, fd, static_cast<uint64_t>(st.st_size), durable));
}

ShardLog::~ShardLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status ShardLog::Append(std::string_view payload) {
  SGMLQDB_FAULT_POINT("wal.append");
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendFramed(&frame, payload);
  SGMLQDB_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  size_ += frame.size();
  return Status::OK();
}

Status ShardLog::Sync() {
  SGMLQDB_FAULT_POINT("wal.fsync");
  if (!durable_) return Status::OK();
  if (::fsync(fd_) != 0) return IoError("fsync", path_);
  return Status::OK();
}

Status ShardLog::TruncateTo(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return IoError("ftruncate", path_);
  }
  size_ = size;
  // O_APPEND repositions writes at the (new) end automatically; fsync
  // so a repaired log never resurrects the cut tail after a crash.
  if (durable_ && ::fsync(fd_) != 0) return IoError("fsync", path_);
  return Status::OK();
}

Result<SegmentScan> ScanSegment(const std::string& path) {
  SegmentScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (::access(path.c_str(), F_OK) != 0) return scan;  // absent = empty
    return IoError("open", path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return IoError("read", path);
  const std::string bytes = buf.str();
  scan.file_bytes = bytes.size();

  size_t offset = 0;
  for (;;) {
    std::string_view payload;
    FrameOutcome outcome = ReadFramed(bytes, &offset, &payload);
    if (outcome == FrameOutcome::kEnd) break;
    if (outcome == FrameOutcome::kTorn) {
      scan.torn_records = 1;
      break;
    }
    Result<WalRecord> record = DecodeRecordPayload(payload);
    if (!record.ok()) {
      // CRC-valid but undecodable: corruption past the checksum. The
      // recovery contract is "truncate, never fatal" — same as torn.
      scan.torn_records = 1;
      break;
    }
    scan.records.push_back(std::move(record).value());
    scan.record_ends.push_back(offset);
    scan.valid_bytes = offset;
  }
  return scan;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return IoError("open", path);
  Status st;
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    st = IoError("ftruncate", path);
  } else if (::fsync(fd) != 0) {
    st = IoError("fsync", path);
  }
  ::close(fd);
  return st;
}

}  // namespace sgmlqdb::wal
