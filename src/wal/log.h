// Per-shard append-only log segment.
//
// A ShardLog owns one open segment file and provides the two durable
// primitives the manager sequences: Append (buffered kernel write of
// one framed record) and Sync (fsync — the durability barrier; a
// record is recoverable only once the Sync *after* it returned).
// TruncateTo backs out partially-logged batches when a sibling shard's
// append failed (the cross-shard repair path).
//
// ScanSegment is the read side: it replays a segment file, stopping at
// the first torn frame (short header, short payload, CRC mismatch, or
// a CRC-valid payload that fails strict decode) and reporting the byte
// offset of the valid prefix so recovery can physically truncate the
// tail. A torn tail is expected after a crash and is never an error.
//
// Fault points: `wal.append` fires before the write, `wal.fsync`
// before the fsync — both in the crash matrix.

#ifndef SGMLQDB_WAL_LOG_H_
#define SGMLQDB_WAL_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "wal/format.h"

namespace sgmlqdb::wal {

class ShardLog {
 public:
  /// Opens (creating if absent) `path` for appending. `durable`
  /// controls whether Sync issues a real fsync (benches set it off).
  static Result<std::unique_ptr<ShardLog>> Open(const std::string& path,
                                                bool durable);
  ~ShardLog();
  ShardLog(const ShardLog&) = delete;
  ShardLog& operator=(const ShardLog&) = delete;

  /// Appends one framed record ([len][crc][payload] built here).
  Status Append(std::string_view payload);

  /// Durability barrier: everything appended so far survives a crash
  /// once this returns OK. A no-op (beyond the fault point) when the
  /// log was opened with durable=false.
  Status Sync();

  /// Cuts the file back to `size` bytes (batch repair / torn tail).
  Status TruncateTo(uint64_t size);

  /// Current file size = offset the next Append writes at.
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  ShardLog(std::string path, int fd, uint64_t size, bool durable)
      : path_(std::move(path)), fd_(fd), size_(size), durable_(durable) {}

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
  bool durable_ = true;
};

/// Result of replaying one segment file.
struct SegmentScan {
  std::vector<WalRecord> records;  // the valid prefix, in order
  /// record_ends[i] = file offset just past records[i]'s frame — the
  /// truncation boundary that keeps records[0..i].
  std::vector<uint64_t> record_ends;
  uint64_t valid_bytes = 0;        // file offset past the last valid frame
  uint64_t file_bytes = 0;         // actual file size
  uint64_t torn_records = 0;       // 1 if a torn tail was found, else 0
};

/// Replays `path` (missing file ⇒ empty scan). Torn tails stop the
/// scan and are counted, never fatal; only I/O errors fail.
Result<SegmentScan> ScanSegment(const std::string& path);

/// Truncates `path` to `size` bytes and fsyncs it (recovery cleanup).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace sgmlqdb::wal

#endif  // SGMLQDB_WAL_LOG_H_
