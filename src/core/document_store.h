// DocumentStore: the library's facade. Owns the pipeline of the
// paper's system — SGML parsing, DTD->schema mapping, document
// loading, full-text indexing, and query execution (extended O2SQL on
// top of the calculus, via the naive or the algebraic engine).
//
// Typical use:
//
//   sgmlqdb::DocumentStore store;
//   store.LoadDtd(dtd_text);                      // Figure 1
//   store.LoadDocument(sgml_text, "my_article");  // Figure 2
//   auto rows = store.Query(
//       "select t from my_article .. title(t)");  // Q3

#ifndef SGMLQDB_CORE_DOCUMENT_STORE_H_
#define SGMLQDB_CORE_DOCUMENT_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "base/exec_guard.h"
#include "base/status.h"
#include "om/database.h"
#include "oql/oql.h"
#include "sgml/document.h"
#include "sgml/dtd.h"
#include "text/index.h"
#include "text/query_cache.h"

namespace sgmlqdb {

class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Parses a DTD and compiles it into the store's schema (paper §3).
  /// Must be called exactly once, before any document is loaded.
  Status LoadDtd(std::string_view dtd_text);

  /// Parses, validates and loads a document; appends it to the
  /// doctype's persistence root (e.g. `Articles`). When `name` is
  /// non-empty, additionally binds the root object to that
  /// persistence name (e.g. "my_article").
  Result<om::ObjectId> LoadDocument(std::string_view sgml_text,
                                    std::string_view name = "");

  struct QueryOptions {
    oql::Engine engine = oql::Engine::kNaive;
    /// Path-variable interpretation (§5.2). The liberal semantics is
    /// what the paper prescribes for hypertext navigation; it is only
    /// defined for the naive engine (the algebraic expansion needs the
    /// restricted semantics), and Query rejects the combination with
    /// the algebraic engine as InvalidArgument.
    path::PathSemantics semantics = path::PathSemantics::kRestricted;
    /// Run the algebraic plan optimizer (index pushdown, filter
    /// pushdown, branch pruning). No effect on the naive engine.
    bool optimize = true;
    /// Wall-clock budget for the execution; past it the statement
    /// stops cooperatively with kDeadlineExceeded. 0 = no deadline.
    /// Execution-only: does not key the service's plan cache.
    uint64_t timeout_ms = 0;
    /// Materialized-row budget across all operators; exceeded =>
    /// kResourceExhausted. 0 = unlimited.
    uint64_t max_rows = 0;
    /// Evaluation-step budget (guard probes ~ operator iterations);
    /// bounds row-free loops such as path enumeration. 0 = unlimited.
    uint64_t max_steps = 0;

    /// True when any deadline/budget is set (a guard is needed).
    bool HasLimits() const {
      return timeout_ms != 0 || max_rows != 0 || max_steps != 0;
    }
  };

  /// Validates an engine/semantics combination: the liberal semantics
  /// is only defined for the naive engine (the §5.4 expansion needs
  /// the restricted semantics' finite, schema-derivable path sets).
  static Status ValidateOptions(const QueryOptions& options);

  /// Executes an extended-O2SQL statement (paper §4).
  Result<om::Value> Query(std::string_view oql,
                          oql::Engine engine = oql::Engine::kNaive) const;
  Result<om::Value> Query(std::string_view oql,
                          const QueryOptions& options) const;

  /// Marks the store immutable: after Freeze(), LoadDtd/LoadDocument
  /// fail with Unavailable. This is the handshake the concurrent
  /// QueryService performs before serving — a frozen store is safe for
  /// unsynchronized concurrent reads. Idempotent; cannot be undone.
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Serializes a loaded document back to SGML (inverse mapping).
  Result<std::string> ExportSgml(om::ObjectId root) const;

  /// The `text()` operator: inner text of an element object.
  Result<std::string> TextOf(om::ObjectId oid) const;

  // -- Introspection -----------------------------------------------------
  bool has_dtd() const { return dtd_.has_value(); }
  const sgml::Dtd& dtd() const { return *dtd_; }
  const om::Database& db() const { return *db_; }
  const om::Schema& schema() const { return db_->schema(); }
  const text::InvertedIndex& text_index() const { return text_index_; }
  const std::map<uint64_t, std::string>& element_texts() const {
    return element_texts_;
  }
  /// The calculus evaluation context over this store (valid while the
  /// store lives).
  calculus::EvalContext eval_context() const;

 private:
  std::optional<sgml::Dtd> dtd_;
  std::atomic<bool> frozen_{false};
  std::unique_ptr<om::Database> db_;
  std::map<uint64_t, std::string> element_texts_;
  /// unit id -> oid id of the document root it was loaded under (see
  /// calculus::EvalContext::unit_docs).
  std::map<uint64_t, uint64_t> unit_docs_;
  text::InvertedIndex text_index_;
  /// Pattern/candidate cache over text_index_. LoadDocument replaces
  /// it with a fresh cache (cached candidate sets are snapshots of the
  /// index); an eval_context() must not outlive a subsequent load.
  /// Thread-safe for frozen-store concurrent serving.
  std::shared_ptr<text::TextQueryCache> text_cache_ =
      std::make_shared<text::TextQueryCache>();
};

}  // namespace sgmlqdb

#endif  // SGMLQDB_CORE_DOCUMENT_STORE_H_
