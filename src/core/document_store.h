// DocumentStore: the library's facade. Owns the pipeline of the
// paper's system — SGML parsing, DTD->schema mapping, document
// loading, full-text indexing, and query execution (extended O2SQL on
// top of the calculus, via the naive or the algebraic engine).
//
// Typical use:
//
//   sgmlqdb::DocumentStore store;
//   store.LoadDtd(dtd_text);                      // Figure 1
//   store.LoadDocument(sgml_text, "my_article");  // Figure 2
//   auto rows = store.Query(
//       "select t from my_article .. title(t)");  // Q3
//
// Versioning: the store's data lives in ingest::StoreSnapshot
// versions. Before Freeze() there is a single mutable version and the
// classic single-threaded load loop above works unchanged (each load
// advances the epoch so the text-query cache never serves stale
// candidate sets). Freeze() publishes that version — the degenerate
// single-epoch case — and from then on mutation happens through
// BeginIngest()/PublishIngest(): a single writer builds the next
// version copy-on-write while concurrent readers keep serving pinned
// snapshots, and a publish atomically swaps versions with no
// stop-the-world.

#ifndef SGMLQDB_CORE_DOCUMENT_STORE_H_
#define SGMLQDB_CORE_DOCUMENT_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include <vector>

#include "base/exec_guard.h"
#include "base/status.h"
#include "ingest/ingest_session.h"
#include "ingest/snapshot.h"
#include "wal/manager.h"
#include "om/database.h"
#include "oql/oql.h"
#include "sgml/document.h"
#include "sgml/dtd.h"
#include "text/index.h"
#include "text/query_cache.h"

namespace sgmlqdb {

class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Parses a DTD and compiles it into the store's schema (paper §3).
  /// Must be called exactly once, before any document is loaded.
  Status LoadDtd(std::string_view dtd_text);

  /// Parses, validates and loads a document; appends it to the
  /// doctype's persistence root (e.g. `Articles`). When `name` is
  /// non-empty, additionally binds the root object to that
  /// persistence name (e.g. "my_article"). Pre-freeze only; after
  /// Freeze() use BeginIngest()/PublishIngest().
  ///
  /// `oid_base` != 0 numbers the document's objects from that oid
  /// (the sharded store assigns each document a disjoint oid block so
  /// object identity is independent of shard placement); it must be
  /// past every oid already assigned. 0 = continue numbering.
  Result<om::ObjectId> LoadDocument(std::string_view sgml_text,
                                    std::string_view name = "",
                                    uint64_t oid_base = 0);

  /// Declares a per-document persistence name (typed as the doctype's
  /// class) without binding it. The sharded store declares every
  /// document name on every shard — so one schema compiles every
  /// statement — while binding it only on the document's home shard.
  /// Idempotent; pre-freeze only.
  Status DeclareDocumentName(std::string_view name);

  struct QueryOptions {
    oql::Engine engine = oql::Engine::kNaive;
    /// Path-variable interpretation (§5.2). The liberal semantics is
    /// what the paper prescribes for hypertext navigation; it is only
    /// defined for the naive engine (the algebraic expansion needs the
    /// restricted semantics), and Query rejects the combination with
    /// the algebraic engine as InvalidArgument.
    path::PathSemantics semantics = path::PathSemantics::kRestricted;
    /// Run the algebraic plan optimizer (index pushdown, filter
    /// pushdown, branch pruning). No effect on the naive engine.
    bool optimize = true;
    /// Wall-clock budget for the execution; past it the statement
    /// stops cooperatively with kDeadlineExceeded. 0 = no deadline.
    /// Execution-only: does not key the service's plan cache.
    uint64_t timeout_ms = 0;
    /// Materialized-row budget across all operators; exceeded =>
    /// kResourceExhausted. 0 = unlimited.
    uint64_t max_rows = 0;
    /// Evaluation-step budget (guard probes ~ operator iterations);
    /// bounds row-free loops such as path enumeration. 0 = unlimited.
    uint64_t max_steps = 0;

    /// True when any deadline/budget is set (a guard is needed).
    bool HasLimits() const {
      return timeout_ms != 0 || max_rows != 0 || max_steps != 0;
    }
  };

  /// Validates an engine/semantics combination: the liberal semantics
  /// is only defined for the naive engine (the §5.4 expansion needs
  /// the restricted semantics' finite, schema-derivable path sets).
  static Status ValidateOptions(const QueryOptions& options);

  /// Executes an extended-O2SQL statement (paper §4) against the
  /// current version.
  Result<om::Value> Query(std::string_view oql,
                          oql::Engine engine = oql::Engine::kNaive) const;
  Result<om::Value> Query(std::string_view oql,
                          const QueryOptions& options) const;

  /// Publishes the loaded state as the first served version: after
  /// Freeze(), LoadDtd/LoadDocument fail with Unavailable and all
  /// mutation goes through ingest sessions. This is the handshake the
  /// concurrent QueryService performs before serving. Idempotent;
  /// cannot be undone.
  void Freeze();
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  // -- Live ingestion (post-freeze) --------------------------------------

  /// Opens the single-writer ingest session over the current version.
  /// Fails with Unavailable while another session is open, and with
  /// InvalidArgument before Freeze() (use LoadDocument while loading).
  /// The session must not outlive the store.
  Result<std::unique_ptr<ingest::IngestSession>> BeginIngest();

  /// Atomically publishes a session's workspace as the next version.
  /// In-flight statements keep their pinned snapshot; statements
  /// starting afterwards see the new epoch. Returns the new epoch.
  Result<uint64_t> PublishIngest(std::unique_ptr<ingest::IngestSession> session);

  /// The current version, pinned: hold the returned pointer for the
  /// duration of one statement and every structure it references
  /// stays valid across publishes. (ingest::ContextFor builds an
  /// EvalContext that carries the pin.)
  std::shared_ptr<const ingest::StoreSnapshot> snapshot() const;

  /// Current version number (advances per pre-freeze load and per
  /// publish).
  uint64_t epoch() const { return snapshots_.current_epoch(); }
  /// Documents in the current version.
  size_t document_count() const;
  ingest::SnapshotManager::Stats snapshot_stats() const {
    return snapshots_.stats();
  }
  text::TextQueryCache::CacheStats text_cache_stats() const;

  // -- Durability (src/wal/) ---------------------------------------------

  /// Opens a data dir and returns a store rebuilt from its newest
  /// valid checkpoint plus the WAL tail (torn tails are truncated,
  /// never fatal). A fresh/empty dir returns an unfrozen store ready
  /// for LoadDtd/LoadDocument — which, like every later mutation, are
  /// then journaled durably. A recovered store comes back frozen.
  static Result<std::unique_ptr<DocumentStore>> OpenOrRecover(
      const wal::Options& options);

  /// Attaches a durability manager: LoadDtd/LoadDocument and
  /// PublishIngest journal through it (fsync before publish) once its
  /// journaling is enabled. OpenOrRecover wires this up.
  void AttachWal(std::shared_ptr<wal::Manager> wal) { wal_ = std::move(wal); }
  wal::Manager* wal() const { return wal_.get(); }

  /// Writes a whole-epoch checkpoint of the current version and
  /// rotates the WAL. Requires an attached manager; excluded against
  /// concurrent ingest by the single-writer latch.
  Status Checkpoint();

  /// One document of the current version, as the checkpoint stores it.
  struct DumpedDocument {
    std::string name;   // bound persistence name ("" if unnamed)
    uint64_t first_oid; // smallest oid in the document's block
    std::string sgml;   // exported text
  };
  /// Current version's documents, in persistence-root list order (the
  /// order a reload must reproduce).
  Result<std::vector<DumpedDocument>> DumpDocuments() const;
  /// Per-document persistence names declared in the schema, in
  /// declaration order (class-typed names; the list-typed doctype
  /// root is excluded).
  std::vector<std::string> DeclaredNames() const;
  /// Next oid the current version's database would assign.
  uint64_t next_oid() const;
  /// Pre-freeze: restores the oid high-water mark (recovery preserves
  /// the gaps removed documents left; oids are never reused).
  Status SetNextOid(uint64_t next);
  /// The DTD source text LoadDtd compiled (checkpoint metadata).
  const std::string& dtd_text() const { return dtd_text_; }

  /// Serializes a loaded document back to SGML (inverse mapping).
  Result<std::string> ExportSgml(om::ObjectId root) const;

  /// The `text()` operator: inner text of an element object.
  Result<std::string> TextOf(om::ObjectId oid) const;

  // -- Introspection -----------------------------------------------------
  // The reference-returning accessors read the *current* version and
  // are meant for single-threaded use (loading, tests, examples);
  // concurrent readers must go through snapshot(), which pins.
  bool has_dtd() const { return dtd_.has_value(); }
  const sgml::Dtd& dtd() const { return *dtd_; }
  const om::Database& db() const { return *state()->db; }
  const om::Schema& schema() const { return state()->db->schema(); }
  const text::InvertedIndex& text_index() const { return *state()->index; }
  const rank::CorpusStats& rank_stats() const { return *state()->rank_stats; }
  const std::map<uint64_t, std::string>& element_texts() const {
    return *state()->element_texts;
  }
  /// The calculus evaluation context over the current version (valid
  /// while the store lives and no newer version is published; pinned
  /// contexts come from ingest::ContextFor(snapshot())).
  calculus::EvalContext eval_context() const;

 private:
  /// The current version: the loading workspace pre-freeze, the
  /// manager's published snapshot afterwards.
  std::shared_ptr<const ingest::StoreSnapshot> state() const;

  std::optional<sgml::Dtd> dtd_;
  std::string dtd_text_;
  std::shared_ptr<wal::Manager> wal_;
  /// Loads + replaces journaled so far (the WAL's doc_seq axis for a
  /// standalone store; the sharded facade journals with its own).
  uint64_t wal_doc_seq_ = 0;
  std::atomic<bool> frozen_{false};
  std::atomic<bool> ingest_active_{false};
  ingest::SnapshotManager snapshots_;
  /// Pre-freeze loading workspace; null once Freeze() publishes it.
  /// The store must not hold a reference of its own afterwards — the
  /// manager's min-live-epoch accounting (and thus cache invalidation)
  /// counts only *reader* pins.
  mutable std::mutex state_mu_;
  std::shared_ptr<ingest::StoreSnapshot> state_;
};

}  // namespace sgmlqdb

#endif  // SGMLQDB_CORE_DOCUMENT_STORE_H_
