// Startup recovery: OpenOrRecover for DocumentStore and ShardedStore.
//
// Both follow the same sequence over the wal::Manager's recovery
// plan:
//
//   1. compile the DTD (checkpoint copy, or the WAL's kDtd record)
//   2. re-declare every persistence name (so prepared statements
//      naming since-removed documents still typecheck)
//   3. load each checkpoint document pre-freeze with its recorded
//      first oid — the proven SGML export round-trip, plus explicit
//      oid bases, reproduces object identity bit-for-bit
//   4. restore each shard's oid high-water mark (gaps left by removed
//      documents survive; oids are never reused)
//   5. Freeze, then replay the consistent WAL prefix batch by batch
//      through the normal ingest machinery — the sharded facade
//      re-runs Ingest with the restored document-sequence counter, so
//      routing and oid blocks recompute to their original values
//   6. enable journaling; later mutations append to the same logs
//
// Replay runs with journaling disabled (a replayed batch must not
// re-log itself); a batch that was logged had already applied cleanly
// once, so a replay failure is corruption-grade and fails the open.

#include <chrono>

#include "core/document_store.h"
#include "core/sharded_store.h"
#include "wal/manager.h"

namespace sgmlqdb {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MillisSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

Result<std::unique_ptr<DocumentStore>> DocumentStore::OpenOrRecover(
    const wal::Options& options) {
  const Clock::time_point start = Clock::now();
  SGMLQDB_ASSIGN_OR_RETURN(std::shared_ptr<wal::Manager> mgr,
                           wal::Manager::Open(options, 1));
  const wal::RecoveryPlan& plan = mgr->plan();
  auto store = std::make_unique<DocumentStore>();

  if (plan.has_dtd) {
    SGMLQDB_RETURN_IF_ERROR(store->LoadDtd(plan.dtd_text));
    uint64_t docs_recovered = 0;
    if (plan.has_checkpoint) {
      const wal::CheckpointState& ckpt = plan.checkpoint;
      for (const std::string& name : ckpt.declared_names) {
        SGMLQDB_RETURN_IF_ERROR(store->DeclareDocumentName(name));
      }
      for (const wal::CheckpointDoc& doc : ckpt.shards[0].docs) {
        SGMLQDB_RETURN_IF_ERROR(
            store->LoadDocument(doc.sgml, doc.name, doc.oid_base).status());
        docs_recovered++;
      }
      if (ckpt.shards[0].next_oid > store->next_oid()) {
        SGMLQDB_RETURN_IF_ERROR(store->SetNextOid(ckpt.shards[0].next_oid));
      }
      store->wal_doc_seq_ = ckpt.doc_seq;
    }
    store->Freeze();
    for (const wal::WalRecord& batch : plan.batches) {
      SGMLQDB_ASSIGN_OR_RETURN(
          std::unique_ptr<ingest::IngestSession> session,
          store->BeginIngest());
      for (const wal::LoggedOp& op : batch.ops) {
        Status st;
        switch (op.kind) {
          case wal::LoggedOp::Kind::kLoad:
            st = session->LoadDocument(op.sgml, op.name, op.oid_base)
                     .status();
            if (st.ok()) docs_recovered++;
            break;
          case wal::LoggedOp::Kind::kReplace:
            st = session->ReplaceDocument(op.name, op.sgml, op.oid_base)
                     .status();
            break;
          case wal::LoggedOp::Kind::kRemove:
            st = session->RemoveDocument(op.name);
            break;
          case wal::LoggedOp::Kind::kDeclare:
            st = session->DeclareName(op.name);
            break;
          case wal::LoggedOp::Kind::kRemoveRoot:
            st = session->RemoveDocumentRoot(om::ObjectId(op.oid_base));
            break;
        }
        if (!st.ok()) {
          return Status::Internal("wal replay: batch " +
                                  std::to_string(batch.batch_seq) +
                                  " failed: " + st.ToString());
        }
      }
      SGMLQDB_RETURN_IF_ERROR(store->PublishIngest(std::move(session))
                                  .status());
      store->wal_doc_seq_ = batch.doc_seq_after;
    }
    mgr->recovery_stats().docs_recovered = docs_recovered;
  }
  mgr->recovery_stats().recovery_ms = MillisSince(start);
  mgr->EnableJournal();
  store->AttachWal(std::move(mgr));
  return store;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::OpenOrRecover(
    const wal::Options& options, size_t shards,
    algebra::BranchExecutor* executor) {
  const Clock::time_point start = Clock::now();
  if (shards == 0) shards = 1;
  SGMLQDB_ASSIGN_OR_RETURN(
      std::shared_ptr<wal::Manager> mgr,
      wal::Manager::Open(options, static_cast<uint32_t>(shards)));
  const wal::RecoveryPlan& plan = mgr->plan();
  auto store = std::make_unique<ShardedStore>(shards);

  if (plan.has_dtd) {
    SGMLQDB_RETURN_IF_ERROR(store->LoadDtd(plan.dtd_text));
    uint64_t docs_recovered = 0;
    if (plan.has_checkpoint) {
      const wal::CheckpointState& ckpt = plan.checkpoint;
      for (const std::string& name : ckpt.declared_names) {
        for (DocumentStore* shard : store->shards_) {
          SGMLQDB_RETURN_IF_ERROR(shard->DeclareDocumentName(name));
        }
      }
      for (size_t i = 0; i < store->shards_.size(); ++i) {
        DocumentStore* shard = store->shards_[i];
        for (const wal::CheckpointDoc& doc : ckpt.shards[i].docs) {
          // Straight to the home shard: checkpoint placement is the
          // original routing's outcome, not re-derived.
          SGMLQDB_RETURN_IF_ERROR(
              shard->LoadDocument(doc.sgml, doc.name, doc.oid_base)
                  .status());
          docs_recovered++;
          // Names everywhere: declared on the siblings.
          if (!doc.name.empty()) {
            for (size_t j = 0; j < store->shards_.size(); ++j) {
              if (j == i) continue;
              SGMLQDB_RETURN_IF_ERROR(
                  store->shards_[j]->DeclareDocumentName(doc.name));
            }
          }
        }
        if (ckpt.shards[i].next_oid > shard->next_oid()) {
          SGMLQDB_RETURN_IF_ERROR(shard->SetNextOid(ckpt.shards[i].next_oid));
        }
      }
      store->doc_seq_.store(ckpt.doc_seq, std::memory_order_relaxed);
    }
    store->Freeze();
    for (const wal::WalRecord& batch : plan.batches) {
      // Restore the sequence counter the batch planned against
      // (failed batches consumed sequence numbers without being
      // logged), then re-run the original Ingest: routing, oid blocks
      // and name homes recompute to their logged-run values.
      store->doc_seq_.store(batch.doc_seq_before, std::memory_order_relaxed);
      std::vector<DocMutation> ops;
      ops.reserve(batch.ops.size());
      for (const wal::LoggedOp& op : batch.ops) {
        DocMutation mutation;
        switch (op.kind) {
          case wal::LoggedOp::Kind::kLoad:
            mutation.kind = DocMutation::Kind::kLoad;
            break;
          case wal::LoggedOp::Kind::kReplace:
            mutation.kind = DocMutation::Kind::kReplace;
            break;
          case wal::LoggedOp::Kind::kRemove:
            mutation.kind = DocMutation::Kind::kRemove;
            break;
          default:
            return Status::Internal(
                "wal replay: facade batch " +
                std::to_string(batch.batch_seq) +
                " holds a session-level op");
        }
        mutation.name = op.name;
        mutation.sgml = op.sgml;
        ops.push_back(std::move(mutation));
      }
      Result<IngestResult> applied = store->Ingest(ops, executor);
      if (!applied.ok()) {
        return Status::Internal("wal replay: batch " +
                                std::to_string(batch.batch_seq) +
                                " failed: " + applied.status().ToString());
      }
      docs_recovered += applied->stats.docs_loaded;
      store->doc_seq_.store(batch.doc_seq_after, std::memory_order_relaxed);
    }
    mgr->recovery_stats().docs_recovered = docs_recovered;
  }
  mgr->recovery_stats().recovery_ms = MillisSince(start);
  mgr->EnableJournal();
  store->AttachWal(std::move(mgr));
  return store;
}

}  // namespace sgmlqdb
