// ShardedStore: a partitioned DocumentStore facade for scatter-gather
// execution.
//
// The store is split into N shards, each a full DocumentStore — its
// own object database, inverted index, element-text maps, and
// SnapshotManager epoch stream. Documents are routed to a shard by
// their global load sequence number (seq % N); every shard compiles
// the same DTD, so one schema (shard 0's) prepares every statement
// and the compiled plan executes unchanged against any shard's
// snapshot.
//
// Three invariants make per-shard execution composable:
//
//  1. Deterministic oids. Each document owns a disjoint oid block —
//     global sequence k gets oids [k*kOidsPerDocument+1, ...) — so
//     object identity is a function of load order alone, never of
//     shard placement. The same corpus loaded at any shard count
//     yields byte-identical query results (oids included).
//
//  2. Names everywhere, bindings at home. A per-document persistence
//     name is *declared* in every shard's schema (so preparation
//     against shard 0 typechecks) but *bound* only on the document's
//     home shard. Routing asks where a name is bound: exactly one
//     shard answers.
//
//  3. Epoch-vector snapshots. snapshot() returns a ShardedSnapshot
//     pinning one StoreSnapshot per shard plus the epoch vector it
//     was built from. Cross-shard ingest publishes every touched
//     shard and rebuilds the combined snapshot under one mutex, so a
//     reader either sees a whole batch or none of it.
//
// Ingest(ops) is the batched cross-shard writer: it partitions the
// batch by home shard, opens one IngestSession per touched shard,
// applies the per-shard slices in parallel (per-shard single-writer
// latches still hold — parallelism is across shards), and publishes
// atomically. Any failure abandons every session; the published state
// is untouched.

#ifndef SGMLQDB_CORE_SHARDED_STORE_H_
#define SGMLQDB_CORE_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "core/document_store.h"
#include "ingest/ingest_session.h"
#include "ingest/snapshot.h"

namespace sgmlqdb::algebra {
class BranchExecutor;
}  // namespace sgmlqdb::algebra

namespace sgmlqdb {

/// One consistent cross-shard version: shard i's pinned snapshot and
/// the epoch it carried when the vector was built. Immutable once
/// returned; hold the shared_ptr for the duration of one statement
/// and every shard's structures stay valid across publishes.
struct ShardedSnapshot {
  std::vector<std::shared_ptr<const ingest::StoreSnapshot>> shards;
  /// shards[i] == nullptr ? 0 : shards[i]->epoch, frozen at build
  /// time. Torn vectors are impossible: publishes and rebuilds
  /// serialize on the facade's snapshot mutex.
  std::vector<uint64_t> epochs;
  /// Monotone rebuild counter (distinct from any shard epoch).
  uint64_t version = 0;
};

/// One document mutation in a cross-shard ingest batch. Mirrors the
/// IngestSession verbs; the facade routes each op to its home shard.
struct DocMutation {
  enum class Kind { kLoad, kReplace, kRemove };
  Kind kind = Kind::kLoad;
  std::string name;  // empty for unnamed loads
  std::string sgml;  // empty for removes

  static DocMutation Load(std::string sgml_text, std::string doc_name = "") {
    return {Kind::kLoad, std::move(doc_name), std::move(sgml_text)};
  }
  static DocMutation Replace(std::string doc_name, std::string sgml_text) {
    return {Kind::kReplace, std::move(doc_name), std::move(sgml_text)};
  }
  static DocMutation Remove(std::string doc_name) {
    return {Kind::kRemove, std::move(doc_name), {}};
  }
};

class ShardedStore {
 public:
  /// Oid-block stride: document k numbers its objects from
  /// k*kOidsPerDocument + 1. 2^20 oids per document is ~3 orders of
  /// magnitude past the largest test corpus's element count.
  static constexpr uint64_t kOidsPerDocument = uint64_t{1} << 20;

  struct IngestResult {
    /// Combined-snapshot version after the batch published.
    uint64_t version = 0;
    /// Aggregated over every touched shard's session.
    ingest::IngestSession::Stats stats;
    /// Wall time of the atomic publish phase (all shard publishes +
    /// the combined-snapshot rebuild, under the snapshot mutex).
    uint64_t publish_micros = 0;
    size_t shards_touched = 0;
  };

  /// An owning store partitioned into `shards` partitions (>= 1).
  /// Documents get disjoint oid blocks (invariant 1 above).
  explicit ShardedStore(size_t shards);

  /// A non-owning single-shard view over an existing store — how the
  /// service layer adopts a caller-built DocumentStore unchanged.
  /// Oid blocks are NOT assigned (the external store may already hold
  /// arbitrary oids); `external` must outlive the view.
  explicit ShardedStore(DocumentStore& external);

  /// Opens a data dir and returns a facade rebuilt from its newest
  /// valid checkpoint plus the cross-shard consistent WAL prefix
  /// (batch b survives iff every shard it touched logged it; torn
  /// tails are truncated, never fatal). A fresh dir returns an
  /// unfrozen store ready for LoadDtd/LoadDocument/Freeze — journaled
  /// durably from the first call. A recovered store comes back
  /// frozen, serving exactly the recovered epoch. Refuses a dir
  /// written at a different shard count. `executor` parallelizes the
  /// per-shard replay applies, like Ingest.
  static Result<std::unique_ptr<ShardedStore>> OpenOrRecover(
      const wal::Options& options, size_t shards,
      algebra::BranchExecutor* executor = nullptr);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  /// Compiles the DTD into every shard's schema.
  Status LoadDtd(std::string_view dtd_text);

  /// Routes the document to shard (seq % shard_count()), assigns its
  /// oid block, and declares `name` on every other shard. Pre-freeze
  /// only (single-threaded loading), like DocumentStore::LoadDocument.
  Result<om::ObjectId> LoadDocument(std::string_view sgml_text,
                                    std::string_view name = "");

  /// Freezes every shard (publishes each loading workspace as its
  /// shard's first served version).
  void Freeze();
  bool frozen() const { return shards_[0]->frozen(); }

  /// The current cross-shard version, pinned. Rebuilt lazily when any
  /// shard's epoch moved (covers both facade ingests and publishes
  /// made directly against a shard, e.g. through the single-shard
  /// view's underlying store).
  std::shared_ptr<const ShardedSnapshot> snapshot() const;

  /// Applies a batch of mutations across shards and publishes
  /// atomically (invariant 3). `executor` != nullptr applies
  /// per-shard slices in parallel; nullptr applies serially. On any
  /// op failure the whole batch is abandoned (no shard publishes) and
  /// the error of the smallest-index failing op is returned. One
  /// facade-level writer at a time (Unavailable otherwise).
  Result<IngestResult> Ingest(const std::vector<DocMutation>& ops,
                              algebra::BranchExecutor* executor = nullptr);

  /// The shards where `name` is *bound* (not merely declared) in
  /// `snap` — the routing primitive. At most one element for names
  /// maintained through this facade.
  static std::vector<size_t> BoundShards(const ShardedSnapshot& snap,
                                         std::string_view name);

  size_t shard_count() const { return shards_.size(); }
  DocumentStore& shard(size_t i) { return *shards_[i]; }
  const DocumentStore& shard(size_t i) const { return *shards_[i]; }

  bool has_dtd() const { return shards_[0]->has_dtd(); }
  const sgml::Dtd& dtd() const { return shards_[0]->dtd(); }
  /// Documents across all shards (current versions).
  size_t document_count() const;
  /// Global documents routed so far (the oid-block / routing
  /// sequence; includes replaced documents' fresh blocks).
  uint64_t document_sequence() const {
    return doc_seq_.load(std::memory_order_relaxed);
  }
  /// False for the single-shard view over an external store.
  bool assigns_oid_blocks() const { return assign_oid_blocks_; }

  /// The `text()` operator across shards: at most one shard knows the
  /// oid.
  Result<std::string> TextOf(om::ObjectId oid) const;
  /// Inverse mapping across shards (routes to the root's home shard).
  Result<std::string> ExportSgml(om::ObjectId root) const;

  // -- Durability (src/wal/) ---------------------------------------------

  /// Attaches the durability manager (OpenOrRecover wires this up):
  /// LoadDtd, LoadDocument and Ingest journal through it, fsyncing
  /// every touched shard's log before the atomic publish.
  void AttachWal(std::shared_ptr<wal::Manager> wal) { wal_ = std::move(wal); }
  wal::Manager* wal() const { return wal_.get(); }
  /// Writes a whole-epoch checkpoint (every shard's documents + store
  /// metadata) and rotates the WAL. Excluded against concurrent
  /// ingest by the facade writer latch.
  Status Checkpoint();
  /// The DTD source text LoadDtd compiled (checkpoint metadata).
  const std::string& dtd_text() const { return dtd_text_; }

 private:
  /// Rebuilds combined_ from the shards' current snapshots. Caller
  /// holds snap_mu_.
  void RebuildLocked() const;

  std::vector<std::unique_ptr<DocumentStore>> owned_;
  std::vector<DocumentStore*> shards_;  // size >= 1, never null
  const bool assign_oid_blocks_;
  std::shared_ptr<wal::Manager> wal_;
  std::string dtd_text_;
  /// Global document sequence: routing and oid-block assignment.
  std::atomic<uint64_t> doc_seq_{0};
  /// Facade-level single-writer latch for Ingest (each shard also has
  /// its own; this one makes batch planning race-free).
  std::atomic<bool> ingest_active_{false};
  /// Guards combined_/version_ and serializes the publish phase
  /// against snapshot rebuilds (the batch-atomicity mutex).
  mutable std::mutex snap_mu_;
  mutable std::shared_ptr<const ShardedSnapshot> combined_;
  mutable uint64_t version_ = 0;
};

}  // namespace sgmlqdb

#endif  // SGMLQDB_CORE_SHARDED_STORE_H_
