#include "core/sharded_store.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "algebra/ops.h"

namespace sgmlqdb {

namespace {

/// Fires a callable at scope exit (the facade latch release).
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;
  ~ScopeExit() { fn_(); }

 private:
  Fn fn_;
};

}  // namespace

ShardedStore::ShardedStore(size_t shards) : assign_oid_blocks_(true) {
  if (shards == 0) shards = 1;
  owned_.reserve(shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    owned_.push_back(std::make_unique<DocumentStore>());
    shards_.push_back(owned_.back().get());
  }
}

ShardedStore::ShardedStore(DocumentStore& external)
    : assign_oid_blocks_(false) {
  shards_.push_back(&external);
}

Status ShardedStore::LoadDtd(std::string_view dtd_text) {
  for (DocumentStore* shard : shards_) {
    SGMLQDB_RETURN_IF_ERROR(shard->LoadDtd(dtd_text));
  }
  dtd_text_ = std::string(dtd_text);
  if (wal_ != nullptr) {
    SGMLQDB_RETURN_IF_ERROR(wal_->LogDtd(dtd_text));
  }
  return Status::OK();
}

Result<om::ObjectId> ShardedStore::LoadDocument(std::string_view sgml_text,
                                                std::string_view name) {
  const uint64_t seq = doc_seq_.fetch_add(1, std::memory_order_relaxed);
  size_t target = static_cast<size_t>(seq % shards_.size());
  if (!name.empty()) {
    // A reload of an already-bound name must land on its home shard
    // (rebinding elsewhere would leave two shards claiming the name).
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (!shards_[i]->has_dtd()) continue;
      Result<om::Value> bound = shards_[i]->db().LookupName(name);
      if (bound.ok() && bound.value().kind() == om::ValueKind::kObject) {
        target = i;
        break;
      }
    }
  }
  const uint64_t oid_base =
      assign_oid_blocks_ ? seq * kOidsPerDocument + 1 : 0;
  SGMLQDB_ASSIGN_OR_RETURN(
      om::ObjectId root,
      shards_[target]->LoadDocument(sgml_text, name, oid_base));
  // Invariant 2: every other shard's schema learns the name (declared,
  // unbound) so statements naming this document prepare anywhere.
  if (!name.empty()) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (i == target) continue;
      SGMLQDB_RETURN_IF_ERROR(shards_[i]->DeclareDocumentName(name));
    }
  }
  if (wal_ != nullptr) {
    // Journaled as a one-op facade batch; replay re-routes it with the
    // restored sequence counter, reproducing target and oid block.
    std::vector<wal::LoggedOp> ops;
    ops.push_back({wal::LoggedOp::Kind::kLoad, std::string(name),
                   std::string(sgml_text), 0});
    SGMLQDB_RETURN_IF_ERROR(
        wal_->LogBatch(ops, {static_cast<uint32_t>(target)}, seq + 1,
                       shards_[target]->epoch()));
  }
  return root;
}

void ShardedStore::Freeze() {
  for (DocumentStore* shard : shards_) shard->Freeze();
}

void ShardedStore::RebuildLocked() const {
  auto next = std::make_shared<ShardedSnapshot>();
  next->shards.reserve(shards_.size());
  next->epochs.reserve(shards_.size());
  for (const DocumentStore* shard : shards_) {
    std::shared_ptr<const ingest::StoreSnapshot> snap = shard->snapshot();
    next->epochs.push_back(snap == nullptr ? 0 : snap->epoch);
    next->shards.push_back(std::move(snap));
  }
  next->version = ++version_;
  combined_ = std::move(next);
}

std::shared_ptr<const ShardedSnapshot> ShardedStore::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  bool stale = combined_ == nullptr;
  if (!stale) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      // Pre-freeze workspaces bump their epoch in place per load;
      // post-freeze publishes swap the snapshot. Both move epoch().
      if (combined_->epochs[i] != shards_[i]->epoch()) {
        stale = true;
        break;
      }
    }
  }
  if (stale) RebuildLocked();
  return combined_;
}

std::vector<size_t> ShardedStore::BoundShards(const ShardedSnapshot& snap,
                                              std::string_view name) {
  std::vector<size_t> out;
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    if (snap.shards[i] == nullptr) continue;
    // LookupName fails for declared-but-unbound names, so success ==
    // bound, whatever the value kind (document names bind objects;
    // the doctype's persistence root binds a list on every shard).
    if (snap.shards[i]->db->LookupName(name).ok()) out.push_back(i);
  }
  return out;
}

Result<ShardedStore::IngestResult> ShardedStore::Ingest(
    const std::vector<DocMutation>& ops, algebra::BranchExecutor* executor) {
  if (!frozen()) {
    return Status::InvalidArgument(
        "store is not frozen: use LoadDocument while loading, "
        "Ingest only after Freeze()");
  }
  bool expected = false;
  if (!ingest_active_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return Status::Unavailable(
        "another ingest batch is active (single-writer ingestion)");
  }
  ScopeExit release([this] {
    ingest_active_.store(false, std::memory_order_release);
  });

  const size_t n = shards_.size();
  std::shared_ptr<const ShardedSnapshot> snap = snapshot();

  // -- Plan: route every op to its home shard, in batch order. -----------
  struct ShardTask {
    size_t index;  // global op index (error-reporting order)
    const DocMutation* op;
    uint64_t oid_base;
    bool declare_only;  // named load on a non-home shard
  };
  std::vector<std::vector<ShardTask>> plan(n);
  // Homes decided earlier in this batch override the snapshot.
  std::map<std::string, size_t, std::less<>> batch_home;
  auto home_of = [&](const std::string& name) -> int {
    auto it = batch_home.find(name);
    if (it != batch_home.end()) return static_cast<int>(it->second);
    std::vector<size_t> bound = BoundShards(*snap, name);
    return bound.empty() ? -1 : static_cast<int>(bound[0]);
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    const DocMutation& op = ops[i];
    switch (op.kind) {
      case DocMutation::Kind::kLoad: {
        const uint64_t seq = doc_seq_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t base =
            assign_oid_blocks_ ? seq * kOidsPerDocument + 1 : 0;
        size_t target = static_cast<size_t>(seq % n);
        if (!op.name.empty()) {
          int home = home_of(op.name);
          if (home >= 0) target = static_cast<size_t>(home);
          batch_home[op.name] = target;
          for (size_t s = 0; s < n; ++s) {
            if (s != target) plan[s].push_back({i, &op, 0, true});
          }
        }
        plan[target].push_back({i, &op, base, false});
        break;
      }
      case DocMutation::Kind::kReplace: {
        const uint64_t seq = doc_seq_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t base =
            assign_oid_blocks_ ? seq * kOidsPerDocument + 1 : 0;
        // An unknown name goes to shard 0, whose session raises the
        // same NotFound a single store would.
        int home = home_of(op.name);
        size_t target = home >= 0 ? static_cast<size_t>(home) : 0;
        plan[target].push_back({i, &op, base, false});
        break;
      }
      case DocMutation::Kind::kRemove: {
        int home = home_of(op.name);
        size_t target = home >= 0 ? static_cast<size_t>(home) : 0;
        plan[target].push_back({i, &op, 0, false});
        batch_home.erase(op.name);
        break;
      }
    }
  }

  std::vector<size_t> touched;
  for (size_t s = 0; s < n; ++s) {
    if (!plan[s].empty()) touched.push_back(s);
  }
  if (touched.empty()) {
    IngestResult result;
    result.version = snap->version;
    return result;
  }

  // -- Open one session per touched shard (per-shard latches). -----------
  std::vector<std::unique_ptr<ingest::IngestSession>> sessions;
  sessions.reserve(touched.size());
  for (size_t s : touched) {
    Result<std::unique_ptr<ingest::IngestSession>> session =
        shards_[s]->BeginIngest();
    if (!session.ok()) return session.status();  // opened ones auto-release
    sessions.push_back(std::move(session).value());
  }

  // -- Apply per-shard slices, in parallel across shards. ----------------
  // Each slot holds (global index, status) of the shard's first
  // failure; the smallest index wins the batch's error.
  std::vector<std::pair<size_t, Status>> failures(
      touched.size(), {0, Status::OK()});
  auto apply_one = [&](size_t k) {
    ingest::IngestSession* session = sessions[k].get();
    for (const ShardTask& task : plan[touched[k]]) {
      Status st;
      if (task.declare_only) {
        st = session->DeclareName(task.op->name);
      } else {
        switch (task.op->kind) {
          case DocMutation::Kind::kLoad:
            st = session->LoadDocument(task.op->sgml, task.op->name,
                                       task.oid_base)
                     .status();
            break;
          case DocMutation::Kind::kReplace:
            st = session->ReplaceDocument(task.op->name, task.op->sgml,
                                          task.oid_base)
                     .status();
            break;
          case DocMutation::Kind::kRemove:
            st = session->RemoveDocument(task.op->name);
            break;
        }
      }
      if (!st.ok()) {
        failures[k] = {task.index, std::move(st)};
        return;
      }
    }
  };
  if (executor != nullptr && touched.size() > 1) {
    executor->Run(touched.size(), apply_one);
  } else {
    for (size_t k = 0; k < touched.size(); ++k) apply_one(k);
  }

  const std::pair<size_t, Status>* first_failure = nullptr;
  for (const auto& f : failures) {
    if (f.second.ok()) continue;
    if (first_failure == nullptr || f.first < first_failure->first) {
      first_failure = &f;
    }
  }
  if (first_failure != nullptr) {
    // Abandon every session: no shard publishes, the batch leaves the
    // served state untouched (invariant 3's failure half).
    sessions.clear();
    return first_failure->second;
  }

  IngestResult result;
  result.shards_touched = touched.size();
  for (const auto& session : sessions) {
    const ingest::IngestSession::Stats& s = session->stats();
    result.stats.docs_loaded += s.docs_loaded;
    result.stats.docs_replaced += s.docs_replaced;
    result.stats.docs_removed += s.docs_removed;
    result.stats.units_added += s.units_added;
    result.stats.units_removed += s.units_removed;
  }

  // -- Journal the batch, fsynced on every touched shard, before any
  // reader can observe it (fsync-before-publish). A log failure
  // abandons the sessions like an apply failure: nothing publishes. --
  if (wal_ != nullptr) {
    std::vector<wal::LoggedOp> logged;
    logged.reserve(ops.size());
    for (const DocMutation& op : ops) {
      wal::LoggedOp entry;
      switch (op.kind) {
        case DocMutation::Kind::kLoad:
          entry.kind = wal::LoggedOp::Kind::kLoad;
          break;
        case DocMutation::Kind::kReplace:
          entry.kind = wal::LoggedOp::Kind::kReplace;
          break;
        case DocMutation::Kind::kRemove:
          entry.kind = wal::LoggedOp::Kind::kRemove;
          break;
      }
      entry.name = op.name;
      entry.sgml = op.sgml;
      logged.push_back(std::move(entry));
    }
    std::vector<uint32_t> touched_ids;
    touched_ids.reserve(touched.size());
    for (size_t s : touched) touched_ids.push_back(static_cast<uint32_t>(s));
    Status st = wal_->LogBatch(
        logged, touched_ids, doc_seq_.load(std::memory_order_relaxed),
        shards_[touched[0]]->epoch() + 1);
    if (!st.ok()) {
      sessions.clear();
      return st;
    }
  }

  // -- Publish atomically: all touched shards + the combined rebuild
  // under snap_mu_, so no reader observes a partial batch. ---------------
  const auto publish_start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    for (size_t k = 0; k < touched.size(); ++k) {
      Result<uint64_t> epoch =
          shards_[touched[k]]->PublishIngest(std::move(sessions[k]));
      if (!epoch.ok()) {
        // A mid-batch publish failure (fault injection) leaves earlier
        // shards published; rebuild so the combined snapshot at least
        // reflects what landed, and surface the error.
        sessions.clear();
        RebuildLocked();
        return epoch.status();
      }
    }
    RebuildLocked();
    result.version = combined_->version;
  }
  result.publish_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - publish_start)
          .count());
  return result;
}

size_t ShardedStore::document_count() const {
  size_t total = 0;
  for (const DocumentStore* shard : shards_) {
    total += shard->document_count();
  }
  return total;
}

Result<std::string> ShardedStore::TextOf(om::ObjectId oid) const {
  std::shared_ptr<const ShardedSnapshot> snap = snapshot();
  for (const auto& shard : snap->shards) {
    if (shard == nullptr) continue;
    auto it = shard->element_texts->find(oid.id());
    if (it != shard->element_texts->end()) return it->second;
  }
  return Status::NotFound("no text recorded for oid " +
                          std::to_string(oid.id()));
}

Status ShardedStore::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no durability manager attached");
  }
  // The facade writer latch excludes concurrent Ingest, so every
  // shard's current version is stable for the whole dump.
  bool expected = false;
  const bool latched =
      frozen() && ingest_active_.compare_exchange_strong(
                      expected, true, std::memory_order_acq_rel);
  if (frozen() && !latched) {
    return Status::Unavailable("an ingest batch is active");
  }
  ScopeExit release([this, latched] {
    if (latched) ingest_active_.store(false, std::memory_order_release);
  });

  wal::CheckpointState state;
  state.doc_seq = doc_seq_.load(std::memory_order_relaxed);
  state.shard_count = static_cast<uint32_t>(shards_.size());
  state.dtd_text = dtd_text_;
  state.declared_names = shards_[0]->DeclaredNames();
  state.shards.reserve(shards_.size());
  for (DocumentStore* shard : shards_) {
    wal::CheckpointShard entry;
    entry.epoch = shard->epoch();
    entry.next_oid = shard->next_oid();
    SGMLQDB_ASSIGN_OR_RETURN(
        std::vector<DocumentStore::DumpedDocument> docs,
        shard->DumpDocuments());
    entry.docs.reserve(docs.size());
    for (DocumentStore::DumpedDocument& doc : docs) {
      entry.docs.push_back(
          {std::move(doc.name), doc.first_oid, std::move(doc.sgml)});
    }
    state.shards.push_back(std::move(entry));
  }
  return wal_->Checkpoint(std::move(state));
}

Result<std::string> ShardedStore::ExportSgml(om::ObjectId root) const {
  std::shared_ptr<const ShardedSnapshot> snap = snapshot();
  for (size_t i = 0; i < snap->shards.size(); ++i) {
    if (snap->shards[i] == nullptr) continue;
    auto it = snap->shards[i]->unit_docs->find(root.id());
    if (it != snap->shards[i]->unit_docs->end() && it->second == root.id()) {
      return shards_[i]->ExportSgml(root);
    }
  }
  return Status::NotFound("oid " + std::to_string(root.id()) +
                          " is not a loaded document root");
}

}  // namespace sgmlqdb
