#include "core/document_store.h"

#include <chrono>

#include "base/fault_injection.h"
#include "mapping/exporter.h"
#include "mapping/loader.h"
#include "mapping/names.h"
#include "mapping/schema_compiler.h"
#include "om/typecheck.h"

namespace sgmlqdb {

std::shared_ptr<const ingest::StoreSnapshot> DocumentStore::state() const {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (state_ != nullptr) return state_;
  }
  return snapshots_.Current();
}

Status DocumentStore::LoadDtd(std::string_view dtd_text) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: LoadDtd is not allowed "
                               "after serving starts");
  }
  if (dtd_.has_value()) {
    return Status::InvalidArgument("a DTD is already loaded");
  }
  SGMLQDB_ASSIGN_OR_RETURN(sgml::Dtd dtd, sgml::ParseDtd(dtd_text));
  SGMLQDB_ASSIGN_OR_RETURN(om::Schema schema,
                           mapping::CompileDtdToSchema(dtd));
  dtd_ = std::move(dtd);
  dtd_text_ = std::string(dtd_text);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = ingest::StoreSnapshot::Initial(std::move(schema));
  }
  if (wal_ != nullptr) {
    SGMLQDB_RETURN_IF_ERROR(wal_->LogDtd(dtd_text));
  }
  return Status::OK();
}

Result<om::ObjectId> DocumentStore::LoadDocument(std::string_view sgml_text,
                                                 std::string_view name,
                                                 uint64_t oid_base) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: LoadDocument is not "
                               "allowed after serving starts; use "
                               "BeginIngest/PublishIngest");
  }
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  ingest::StoreSnapshot* ws = state_.get();
  om::Database* db = ws->db.get();
  // A caller-assigned oid block: number this document's objects from
  // `oid_base` (refused if any oid there was already assigned).
  if (oid_base != 0) {
    SGMLQDB_RETURN_IF_ERROR(db->SetNextOid(oid_base));
  }
  // Declare the per-document persistence name so its binding
  // typechecks against the doctype's class.
  if (!name.empty() && db->schema().FindName(name) == nullptr) {
    SGMLQDB_RETURN_IF_ERROR(db->DeclareName(
        std::string(name),
        om::Type::Class(mapping::ClassNameFor(dtd_->doctype()))));
  }
  SGMLQDB_ASSIGN_OR_RETURN(
      mapping::LoadedDocument loaded,
      mapping::LoadDocumentText(*dtd_, sgml_text, db));
  // Conformance check: types + Figure 3 constraints.
  SGMLQDB_RETURN_IF_ERROR(om::CheckConstraints(*db, loaded.root));
  std::vector<std::pair<uint64_t, std::string_view>> rank_units;
  rank_units.reserve(loaded.element_texts.size());
  for (const auto& [oid, text] : loaded.element_texts) {
    (*ws->element_texts)[oid.id()] = text;
    (*ws->unit_docs)[oid.id()] = loaded.root.id();
    ws->index->Add(oid.id(), text);
    rank_units.emplace_back(oid.id(), text);
  }
  ws->rank_stats->AddDocument(loaded.root.id(), rank_units);
  if (!name.empty()) {
    SGMLQDB_RETURN_IF_ERROR(
        db->BindName(name, om::Value::Object(loaded.root)));
  }
  ++ws->doc_count;
  // Advancing the epoch retires cached candidate sets (they are
  // snapshots of the index) without discarding the cache itself.
  ws->epoch = snapshots_.AdvanceEpoch();
  ws->cache->SetLiveEpochFloor(ws->epoch);
  if (wal_ != nullptr) {
    std::vector<wal::LoggedOp> ops;
    ops.push_back({wal::LoggedOp::Kind::kLoad, std::string(name),
                   std::string(sgml_text), oid_base});
    SGMLQDB_RETURN_IF_ERROR(
        wal_->LogBatch(ops, {0}, ++wal_doc_seq_, ws->epoch));
  }
  return loaded.root;
}

Status DocumentStore::DeclareDocumentName(std::string_view name) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: declare names through "
                               "an ingest session");
  }
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  if (name.empty()) return Status::OK();
  om::Database* db = state_->db.get();
  if (db->schema().FindName(name) != nullptr) return Status::OK();
  return db->DeclareName(
      std::string(name),
      om::Type::Class(mapping::ClassNameFor(dtd_->doctype())));
}

void DocumentStore::Freeze() {
  if (frozen_.exchange(true, std::memory_order_acq_rel)) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (state_ == nullptr) {
    // Frozen before LoadDtd: nothing to publish; the store is inert.
    return;
  }
  // The degenerate single-epoch case: the load workspace becomes the
  // first served version. The store drops its own reference — from
  // here on only the manager and pinned statements hold snapshots, so
  // the min-live-epoch accounting sees exactly the reader pins.
  snapshots_.Publish(std::move(state_));
  state_ = nullptr;
}

Result<std::unique_ptr<ingest::IngestSession>> DocumentStore::BeginIngest() {
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  if (!frozen()) {
    return Status::InvalidArgument(
        "store is not frozen: use LoadDocument while loading, "
        "BeginIngest only after Freeze()");
  }
  bool expected = false;
  if (!ingest_active_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return Status::Unavailable("another ingest session is active "
                               "(single-writer ingestion)");
  }
  return std::make_unique<ingest::IngestSession>(
      *dtd_, snapshots_.Current(),
      [this] { ingest_active_.store(false, std::memory_order_release); });
}

Result<uint64_t> DocumentStore::PublishIngest(
    std::unique_ptr<ingest::IngestSession> session) {
  if (session == nullptr) {
    return Status::InvalidArgument("null ingest session");
  }
  if (session->consumed()) {
    return Status::InvalidArgument("ingest session already published");
  }
  SGMLQDB_FAULT_POINT("ingest.publish");
  // fsync-before-publish: the batch's journal must be durable before
  // any reader can observe the new epoch. A log failure rejects the
  // publish outright — the served state stays at the old epoch.
  if (wal_ != nullptr && !session->journal().empty()) {
    uint64_t consumed = 0;
    for (const wal::LoggedOp& op : session->journal()) {
      if (op.kind == wal::LoggedOp::Kind::kLoad ||
          op.kind == wal::LoggedOp::Kind::kReplace) {
        consumed++;
      }
    }
    SGMLQDB_RETURN_IF_ERROR(wal_->LogBatch(session->journal(), {0},
                                           wal_doc_seq_ + consumed,
                                           epoch() + 1));
    wal_doc_seq_ += consumed;
  }
  std::shared_ptr<ingest::StoreSnapshot> next = session->Consume();
  if (next == nullptr) {
    return Status::InvalidArgument("ingest session already published");
  }
  return snapshots_.Publish(std::move(next));
}

std::shared_ptr<const ingest::StoreSnapshot> DocumentStore::snapshot() const {
  return state();
}

size_t DocumentStore::document_count() const {
  auto snap = state();
  return snap == nullptr ? 0 : snap->doc_count;
}

text::TextQueryCache::CacheStats DocumentStore::text_cache_stats() const {
  auto snap = state();
  if (snap == nullptr || snap->cache == nullptr) return {};
  return snap->cache->stats();
}

Result<om::Value> DocumentStore::Query(std::string_view statement,
                                       oql::Engine engine) const {
  QueryOptions options;
  options.engine = engine;
  return Query(statement, options);
}

Status DocumentStore::ValidateOptions(const QueryOptions& options) {
  if (options.engine == oql::Engine::kAlgebraic &&
      options.semantics == path::PathSemantics::kLiberal) {
    return Status::InvalidArgument(
        "liberal path semantics is only supported by the naive engine: "
        "the algebraic expansion (paper §5.4) requires the restricted "
        "semantics' schema-bounded path sets; use Engine::kNaive or "
        "PathSemantics::kRestricted");
  }
  return Status::OK();
}

Result<om::Value> DocumentStore::Query(std::string_view statement,
                                       const QueryOptions& options) const {
  SGMLQDB_RETURN_IF_ERROR(ValidateOptions(options));
  std::shared_ptr<const ingest::StoreSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument("load a DTD first");
  }
  const om::Schema& schema = snap->db->schema();
  calculus::EvalContext ctx = ingest::ContextFor(snap);
  ctx.semantics = options.semantics;
  // Single-statement use gets the same cooperative limits as the
  // service layer; the guard lives for this call only.
  std::optional<ExecGuard> guard;
  if (options.HasLimits()) {
    guard.emplace(ExecGuard::Limits{options.timeout_ms, options.max_rows,
                                    options.max_steps});
    ctx.guard = &*guard;
  }
  oql::OqlOptions oql_options;
  oql_options.engine = options.engine;
  oql_options.optimize = options.optimize;
  return oql::ExecuteOql(ctx, schema, statement, oql_options);
}

Result<std::string> DocumentStore::ExportSgml(om::ObjectId root) const {
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  auto snap = snapshot();
  return mapping::ExportDocumentText(*snap->db, *dtd_, root);
}

Result<std::string> DocumentStore::TextOf(om::ObjectId oid) const {
  auto snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument("load a DTD first");
  }
  auto it = snap->element_texts->find(oid.id());
  if (it == snap->element_texts->end()) {
    return Status::NotFound("no text recorded for oid " +
                            std::to_string(oid.id()));
  }
  return it->second;
}

calculus::EvalContext DocumentStore::eval_context() const {
  return ingest::ContextFor(snapshot());
}

Result<std::vector<DocumentStore::DumpedDocument>>
DocumentStore::DumpDocuments() const {
  std::vector<DumpedDocument> out;
  if (!dtd_.has_value()) return out;
  std::shared_ptr<const ingest::StoreSnapshot> snap = snapshot();
  if (snap == nullptr) return out;
  const om::Database& db = *snap->db;

  // Smallest unit oid per document root. Every element object the
  // loader creates is a unit (it records the object and its inner
  // text in one step), so the minimum is the document's first oid.
  std::map<uint64_t, uint64_t> first_oid;  // root -> min unit oid
  for (const auto& [unit, root] : *snap->unit_docs) {
    auto [it, inserted] = first_oid.emplace(root, unit);
    if (!inserted && unit < it->second) it->second = unit;
  }
  // Reverse name bindings: root oid -> per-document persistence name.
  const std::string root_name = mapping::RootNameFor(dtd_->doctype());
  std::map<uint64_t, std::string> name_of;
  for (const std::string& bound : db.BoundNames()) {
    if (bound == root_name) continue;
    Result<om::Value> v = db.LookupName(bound);
    if (v.ok() && v.value().kind() == om::ValueKind::kObject) {
      name_of[v.value().AsObject().id()] = bound;
    }
  }

  Result<om::Value> roots = db.LookupName(root_name);
  if (!roots.ok() || roots.value().kind() != om::ValueKind::kList) {
    return out;  // no documents loaded yet
  }
  out.reserve(roots.value().size());
  for (size_t i = 0; i < roots.value().size(); ++i) {
    om::Value v = roots.value().Element(i);
    if (v.kind() != om::ValueKind::kObject) continue;
    const om::ObjectId root = v.AsObject();
    DumpedDocument doc;
    auto name_it = name_of.find(root.id());
    if (name_it != name_of.end()) doc.name = name_it->second;
    auto oid_it = first_oid.find(root.id());
    doc.first_oid = oid_it != first_oid.end() ? oid_it->second : root.id();
    SGMLQDB_ASSIGN_OR_RETURN(doc.sgml,
                             mapping::ExportDocumentText(db, *dtd_, root));
    out.push_back(std::move(doc));
  }
  return out;
}

std::vector<std::string> DocumentStore::DeclaredNames() const {
  std::vector<std::string> out;
  std::shared_ptr<const ingest::StoreSnapshot> snap = snapshot();
  if (snap == nullptr) return out;
  for (const om::NameDef& def : snap->db->schema().names()) {
    if (def.type.kind() == om::TypeKind::kClass) out.push_back(def.name);
  }
  return out;
}

uint64_t DocumentStore::next_oid() const {
  std::shared_ptr<const ingest::StoreSnapshot> snap = snapshot();
  return snap == nullptr ? 1 : snap->db->next_oid();
}

Status DocumentStore::SetNextOid(uint64_t next) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: oids advance through "
                               "ingest sessions");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  if (state_ == nullptr) {
    return Status::InvalidArgument("load a DTD first");
  }
  return state_->db->SetNextOid(next);
}

Status DocumentStore::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no durability manager attached");
  }
  // Exclude concurrent writers: the checkpoint must capture a version
  // no session is about to supersede mid-dump.
  bool expected = false;
  if (frozen() && !ingest_active_.compare_exchange_strong(
                      expected, true, std::memory_order_acq_rel)) {
    return Status::Unavailable("an ingest session is active");
  }
  Status result;
  {
    wal::CheckpointState state;
    state.doc_seq = wal_doc_seq_;
    state.dtd_text = dtd_text_;
    state.declared_names = DeclaredNames();
    wal::CheckpointShard shard;
    shard.epoch = epoch();
    shard.next_oid = next_oid();
    Result<std::vector<DumpedDocument>> docs = DumpDocuments();
    if (!docs.ok()) {
      result = docs.status();
    } else {
      shard.docs.reserve(docs->size());
      for (DumpedDocument& doc : *docs) {
        shard.docs.push_back(
            {std::move(doc.name), doc.first_oid, std::move(doc.sgml)});
      }
      state.shards.push_back(std::move(shard));
      state.shard_count = 1;
      result = wal_->Checkpoint(std::move(state));
    }
  }
  if (frozen()) ingest_active_.store(false, std::memory_order_release);
  return result;
}

}  // namespace sgmlqdb
