#include "core/document_store.h"

#include "mapping/exporter.h"
#include "mapping/loader.h"
#include "mapping/names.h"
#include "mapping/schema_compiler.h"
#include "om/typecheck.h"

namespace sgmlqdb {

Status DocumentStore::LoadDtd(std::string_view dtd_text) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: LoadDtd is not allowed "
                               "after serving starts");
  }
  if (dtd_.has_value()) {
    return Status::InvalidArgument("a DTD is already loaded");
  }
  SGMLQDB_ASSIGN_OR_RETURN(sgml::Dtd dtd, sgml::ParseDtd(dtd_text));
  SGMLQDB_ASSIGN_OR_RETURN(om::Schema schema,
                           mapping::CompileDtdToSchema(dtd));
  dtd_ = std::move(dtd);
  db_ = std::make_unique<om::Database>(std::move(schema));
  return Status::OK();
}

Result<om::ObjectId> DocumentStore::LoadDocument(std::string_view sgml_text,
                                                 std::string_view name) {
  if (frozen()) {
    return Status::Unavailable("store is frozen: LoadDocument is not "
                               "allowed after serving starts");
  }
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  // Declare the per-document persistence name so its binding
  // typechecks against the doctype's class.
  if (!name.empty() && db_->schema().FindName(name) == nullptr) {
    SGMLQDB_RETURN_IF_ERROR(db_->DeclareName(
        std::string(name),
        om::Type::Class(mapping::ClassNameFor(dtd_->doctype()))));
  }
  SGMLQDB_ASSIGN_OR_RETURN(
      mapping::LoadedDocument loaded,
      mapping::LoadDocumentText(*dtd_, sgml_text, db_.get()));
  // Conformance check: types + Figure 3 constraints.
  SGMLQDB_RETURN_IF_ERROR(om::CheckConstraints(*db_, loaded.root));
  for (const auto& [oid, text] : loaded.element_texts) {
    element_texts_[oid.id()] = text;
    unit_docs_[oid.id()] = loaded.root.id();
    text_index_.Add(oid.id(), text);
  }
  if (!name.empty()) {
    SGMLQDB_RETURN_IF_ERROR(
        db_->BindName(name, om::Value::Object(loaded.root)));
  }
  // Cached candidate sets are snapshots of the index; start fresh.
  text_cache_ = std::make_shared<text::TextQueryCache>();
  return loaded.root;
}

Result<om::Value> DocumentStore::Query(std::string_view statement,
                                       oql::Engine engine) const {
  QueryOptions options;
  options.engine = engine;
  return Query(statement, options);
}

Status DocumentStore::ValidateOptions(const QueryOptions& options) {
  if (options.engine == oql::Engine::kAlgebraic &&
      options.semantics == path::PathSemantics::kLiberal) {
    return Status::InvalidArgument(
        "liberal path semantics is only supported by the naive engine: "
        "the algebraic expansion (paper §5.4) requires the restricted "
        "semantics' schema-bounded path sets; use Engine::kNaive or "
        "PathSemantics::kRestricted");
  }
  return Status::OK();
}

Result<om::Value> DocumentStore::Query(std::string_view statement,
                                       const QueryOptions& options) const {
  SGMLQDB_RETURN_IF_ERROR(ValidateOptions(options));
  if (db_ == nullptr) {
    return Status::InvalidArgument("load a DTD first");
  }
  calculus::EvalContext ctx = eval_context();
  ctx.semantics = options.semantics;
  // Single-statement use gets the same cooperative limits as the
  // service layer; the guard lives for this call only.
  std::optional<ExecGuard> guard;
  if (options.HasLimits()) {
    guard.emplace(ExecGuard::Limits{options.timeout_ms, options.max_rows,
                                    options.max_steps});
    ctx.guard = &*guard;
  }
  oql::OqlOptions oql_options;
  oql_options.engine = options.engine;
  oql_options.optimize = options.optimize;
  return oql::ExecuteOql(ctx, db_->schema(), statement, oql_options);
}

Result<std::string> DocumentStore::ExportSgml(om::ObjectId root) const {
  if (!dtd_.has_value()) {
    return Status::InvalidArgument("load a DTD first");
  }
  return mapping::ExportDocumentText(*db_, *dtd_, root);
}

Result<std::string> DocumentStore::TextOf(om::ObjectId oid) const {
  auto it = element_texts_.find(oid.id());
  if (it == element_texts_.end()) {
    return Status::NotFound("no text recorded for oid " +
                            std::to_string(oid.id()));
  }
  return it->second;
}

calculus::EvalContext DocumentStore::eval_context() const {
  calculus::EvalContext ctx;
  ctx.db = db_.get();
  ctx.element_texts = &element_texts_;
  ctx.text_index = &text_index_;
  ctx.text_cache = text_cache_.get();
  ctx.unit_docs = &unit_docs_;
  return ctx;
}

}  // namespace sgmlqdb
