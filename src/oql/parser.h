// Parser for the extended O2SQL fragment (paper §4). See ast.h for
// the grammar sketch and oql.h for the execution entry point.

#ifndef SGMLQDB_OQL_PARSER_H_
#define SGMLQDB_OQL_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "oql/ast.h"

namespace sgmlqdb::oql {

/// Parses a statement (select-from-where or bare expression).
Result<Statement> ParseStatement(std::string_view input);

}  // namespace sgmlqdb::oql

#endif  // SGMLQDB_OQL_PARSER_H_
