#include "oql/oql.h"

#include <cstdio>
#include <set>
#include <utility>

#include "algebra/aggregate.h"
#include "oql/parser.h"
#include "oql/translate.h"

namespace sgmlqdb::oql {

Result<PreparedStatement> Prepare(const om::Schema& schema,
                                  std::string_view statement,
                                  const OqlOptions& options) {
  SGMLQDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  SGMLQDB_ASSIGN_OR_RETURN(Translated t, Translate(schema, stmt));
  PreparedStatement prepared;
  prepared.engine = options.engine;
  prepared.is_query = t.is_query;
  prepared.query = std::move(t.query);
  prepared.term = std::move(t.term);
  prepared.post = t.post;
  {
    std::set<std::string> roots;
    if (prepared.is_query) {
      calculus::CollectRootNames(prepared.query, &roots);
    } else if (prepared.term != nullptr) {
      calculus::CollectRootNames(*prepared.term, &roots);
    } else if (prepared.post != nullptr &&
               prepared.post->kind == rank::PostSpec::Kind::kRank) {
      // A rank statement has no calculus; it reads exactly its root.
      roots.insert(prepared.post->rank.root_name);
    }
    prepared.root_refs.assign(roots.begin(), roots.end());
  }
  if (prepared.is_query && options.engine == Engine::kAlgebraic) {
    Result<algebra::CompiledQuery> compiled =
        algebra::CompileQuery(schema, prepared.query);
    if (compiled.ok()) {
      prepared.compiled = std::move(compiled).value();
      if (options.optimize) {
        algebra::OptimizeStats stats;
        Status opt = algebra::OptimizePlan(
            schema, &*prepared.compiled, algebra::OptimizeOptions{}, &stats);
        if (opt.ok()) {
          prepared.optimize_stats = stats;
        } else {
          // Graceful degradation: a failed optimizer pass may have
          // left a partial rewrite — recompile and keep the clean
          // unoptimized plan. The statement stays executable.
          std::fprintf(stderr,
                       "[sgmlqdb] optimizer pass failed (%s); executing "
                       "unoptimized plan\n",
                       opt.ToString().c_str());
          Result<algebra::CompiledQuery> fresh =
              algebra::CompileQuery(schema, prepared.query);
          if (fresh.ok()) {
            prepared.compiled = std::move(fresh).value();
          } else {
            prepared.compiled.reset();  // naive fallback still works
          }
          prepared.degraded_optimizer = true;
        }
      }
    } else if (compiled.status().code() != StatusCode::kUnsupported) {
      return compiled.status();
    }
    // Unsupported shapes keep `compiled` empty and execute on the
    // reference evaluator.
  }
  // Post statements get their algebra plan after the optimizer ran:
  // the wrapper sits above the Distinct(UnionAll(...)) root the
  // optimizer recognizes, and TopKScore plans never compile at all.
  if (options.engine == Engine::kAlgebraic && prepared.post != nullptr) {
    switch (prepared.post->kind) {
      case rank::PostSpec::Kind::kRank:
        prepared.post_plan = algebra::TopKScore(prepared.post);
        break;
      case rank::PostSpec::Kind::kAggregate:
        if (prepared.compiled.has_value()) {
          prepared.post_plan =
              algebra::GroupAggregate(prepared.compiled->plan, prepared.post);
        }
        break;
      case rank::PostSpec::Kind::kOrderBy:
        if (prepared.compiled.has_value()) {
          prepared.post_plan =
              algebra::OrderBy(prepared.compiled->plan, prepared.post);
        }
        break;
    }
  }
  return prepared;
}

namespace {

/// The row-level scatter half shared by both engines: post rows for
/// one store.
Result<std::vector<rank::Row>> PostRows(
    const calculus::EvalContext& ctx, const PreparedStatement& prepared,
    algebra::BranchExecutor* branch_executor) {
  const rank::PostSpec& post = *prepared.post;
  if (post.kind == rank::PostSpec::Kind::kRank) {
    if (prepared.post_plan != nullptr) {
      algebra::ExecContext ec;
      ec.calculus = &ctx;
      ec.branch_executor = branch_executor;
      std::vector<algebra::Row> rows;
      SGMLQDB_RETURN_IF_ERROR(prepared.post_plan->Execute(ec, &rows));
      return rows;
    }
    // Naive engine: the brute-force scan is the ground truth the
    // parity matrix compares the index path against.
    return rank::TopKScoreRows(ctx, post.rank, ctx.rank_scoring,
                               /*use_index=*/false);
  }
  // Aggregates / order-by: fold the engine's distinct binding rows.
  if (prepared.post_plan != nullptr) {
    algebra::ExecContext ec;
    ec.calculus = &ctx;
    ec.branch_executor = branch_executor;
    std::vector<algebra::Row> rows;
    Status run = prepared.post_plan->Execute(ec, &rows);
    if (run.ok()) return rows;
    if (run.code() != StatusCode::kUnsupported) return run;
    // Fall back to the reference evaluator below.
  }
  SGMLQDB_ASSIGN_OR_RETURN(om::Value bindings,
                           calculus::EvaluateQuery(ctx, prepared.query));
  std::vector<rank::Row> rows = rank::BindingsToRows(bindings);
  if (post.kind == rank::PostSpec::Kind::kAggregate) {
    return rank::AggregateRows(post.agg, rows);
  }
  return rank::OrderRows(post.order, rows);
}

}  // namespace

Result<om::Value> ExecutePreparedPartial(
    const calculus::EvalContext& ctx, const PreparedStatement& prepared,
    algebra::BranchExecutor* branch_executor) {
  if (prepared.post == nullptr) {
    return Status::InvalidArgument(
        "ExecutePreparedPartial: statement has no post spec");
  }
  SGMLQDB_ASSIGN_OR_RETURN(std::vector<rank::Row> rows,
                           PostRows(ctx, prepared, branch_executor));
  return rank::PostRowsToPartial(*prepared.post, rows);
}

Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared,
                                  algebra::BranchExecutor* branch_executor) {
  if (prepared.post != nullptr) {
    // Single-store execution of a post statement: one partial,
    // finalized directly (byte-identical to any sharded merge of the
    // same data — see rank::FinalizePartials).
    SGMLQDB_ASSIGN_OR_RETURN(
        om::Value partial,
        ExecutePreparedPartial(ctx, prepared, branch_executor));
    return rank::FinalizePartials(*prepared.post, {partial});
  }
  if (!prepared.is_query) {
    return calculus::EvaluateClosedTerm(ctx, *prepared.term);
  }
  if (prepared.compiled.has_value()) {
    Result<om::Value> r =
        algebra::ExecuteCompiled(ctx, *prepared.compiled, branch_executor);
    if (r.ok() || r.status().code() != StatusCode::kUnsupported) {
      return r;
    }
    // Fall back to the reference evaluator for unsupported shapes.
  }
  return calculus::EvaluateQuery(ctx, prepared.query);
}

Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared) {
  return ExecutePrepared(ctx, prepared, nullptr);
}

Result<om::Value> ExecuteOql(const calculus::EvalContext& ctx,
                             const om::Schema& schema,
                             std::string_view statement,
                             const OqlOptions& options) {
  SGMLQDB_ASSIGN_OR_RETURN(PreparedStatement prepared,
                           Prepare(schema, statement, options));
  return ExecutePrepared(ctx, prepared);
}

}  // namespace sgmlqdb::oql
