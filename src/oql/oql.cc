#include "oql/oql.h"

#include "algebra/compile.h"
#include "oql/parser.h"
#include "oql/translate.h"

namespace sgmlqdb::oql {

Result<om::Value> ExecuteOql(const calculus::EvalContext& ctx,
                             const om::Schema& schema,
                             std::string_view statement,
                             const OqlOptions& options) {
  SGMLQDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  SGMLQDB_ASSIGN_OR_RETURN(Translated t, Translate(schema, stmt));
  if (!t.is_query) {
    return calculus::EvaluateClosedTerm(ctx, *t.term);
  }
  if (options.engine == Engine::kAlgebraic) {
    Result<om::Value> r =
        algebra::EvaluateAlgebraic(ctx, schema, t.query);
    if (r.ok() || r.status().code() != StatusCode::kUnsupported) {
      return r;
    }
    // Fall back to the reference evaluator for unsupported shapes.
  }
  return calculus::EvaluateQuery(ctx, t.query);
}

}  // namespace sgmlqdb::oql
