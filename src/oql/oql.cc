#include "oql/oql.h"

#include <cstdio>
#include <set>
#include <utility>

#include "oql/parser.h"
#include "oql/translate.h"

namespace sgmlqdb::oql {

Result<PreparedStatement> Prepare(const om::Schema& schema,
                                  std::string_view statement,
                                  const OqlOptions& options) {
  SGMLQDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  SGMLQDB_ASSIGN_OR_RETURN(Translated t, Translate(schema, stmt));
  PreparedStatement prepared;
  prepared.engine = options.engine;
  prepared.is_query = t.is_query;
  prepared.query = std::move(t.query);
  prepared.term = std::move(t.term);
  {
    std::set<std::string> roots;
    if (prepared.is_query) {
      calculus::CollectRootNames(prepared.query, &roots);
    } else if (prepared.term != nullptr) {
      calculus::CollectRootNames(*prepared.term, &roots);
    }
    prepared.root_refs.assign(roots.begin(), roots.end());
  }
  if (prepared.is_query && options.engine == Engine::kAlgebraic) {
    Result<algebra::CompiledQuery> compiled =
        algebra::CompileQuery(schema, prepared.query);
    if (compiled.ok()) {
      prepared.compiled = std::move(compiled).value();
      if (options.optimize) {
        algebra::OptimizeStats stats;
        Status opt = algebra::OptimizePlan(
            schema, &*prepared.compiled, algebra::OptimizeOptions{}, &stats);
        if (opt.ok()) {
          prepared.optimize_stats = stats;
        } else {
          // Graceful degradation: a failed optimizer pass may have
          // left a partial rewrite — recompile and keep the clean
          // unoptimized plan. The statement stays executable.
          std::fprintf(stderr,
                       "[sgmlqdb] optimizer pass failed (%s); executing "
                       "unoptimized plan\n",
                       opt.ToString().c_str());
          Result<algebra::CompiledQuery> fresh =
              algebra::CompileQuery(schema, prepared.query);
          if (fresh.ok()) {
            prepared.compiled = std::move(fresh).value();
          } else {
            prepared.compiled.reset();  // naive fallback still works
          }
          prepared.degraded_optimizer = true;
        }
      }
    } else if (compiled.status().code() != StatusCode::kUnsupported) {
      return compiled.status();
    }
    // Unsupported shapes keep `compiled` empty and execute on the
    // reference evaluator.
  }
  return prepared;
}

Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared,
                                  algebra::BranchExecutor* branch_executor) {
  if (!prepared.is_query) {
    return calculus::EvaluateClosedTerm(ctx, *prepared.term);
  }
  if (prepared.compiled.has_value()) {
    Result<om::Value> r =
        algebra::ExecuteCompiled(ctx, *prepared.compiled, branch_executor);
    if (r.ok() || r.status().code() != StatusCode::kUnsupported) {
      return r;
    }
    // Fall back to the reference evaluator for unsupported shapes.
  }
  return calculus::EvaluateQuery(ctx, prepared.query);
}

Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared) {
  return ExecutePrepared(ctx, prepared, nullptr);
}

Result<om::Value> ExecuteOql(const calculus::EvalContext& ctx,
                             const om::Schema& schema,
                             std::string_view statement,
                             const OqlOptions& options) {
  SGMLQDB_ASSIGN_OR_RETURN(PreparedStatement prepared,
                           Prepare(schema, statement, options));
  return ExecutePrepared(ctx, prepared);
}

}  // namespace sgmlqdb::oql
