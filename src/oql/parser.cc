#include "oql/parser.h"

#include <cctype>

#include "base/strutil.h"

namespace sgmlqdb::oql {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kInteger,
    kFloat,
    kString,
    kSymbol,  // punctuation, in `text`
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int64_t integer = 0;
  double real = 0.0;
  size_t offset = 0;
};

/// Lazy lexer with raw-capture support for contains patterns.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Next() {
    Token t = current_;
    Advance();
    return t;
  }

  bool PeekIdent(std::string_view kw) const {
    return current_.kind == Token::Kind::kIdent &&
           EqualsIgnoreCase(current_.text, kw);
  }

  bool ConsumeIdent(std::string_view kw) {
    if (!PeekIdent(kw)) return false;
    Advance();
    return true;
  }

  bool PeekSymbol(std::string_view s) const {
    return current_.kind == Token::Kind::kSymbol && current_.text == s;
  }

  bool ConsumeSymbol(std::string_view s) {
    if (!PeekSymbol(s)) return false;
    Advance();
    return true;
  }

  /// Captures a raw contains-pattern: either a balanced-paren group
  /// (content *without* the outer parens is returned wrapped back in
  /// parens so Pattern::Parse sees grouping) or a single string
  /// literal (returned quoted).
  Result<std::string> CapturePattern() {
    if (current_.kind == Token::Kind::kString) {
      std::string out = "\"" + current_.text + "\"";
      Advance();
      return out;
    }
    if (!PeekSymbol("(")) {
      return Status::ParseError(
          "OQL: expected a pattern after 'contains' at offset " +
          std::to_string(current_.offset));
    }
    // Re-scan raw text from the '(' with quote awareness.
    size_t start = current_.offset;
    size_t i = start;
    int depth = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (c == '"' || c == '\'') {
        char q = c;
        ++i;
        while (i < input_.size() && input_[i] != q) ++i;
        if (i >= input_.size()) {
          return Status::ParseError("OQL: unterminated string in pattern");
        }
        ++i;
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
    if (depth != 0) {
      return Status::ParseError("OQL: unbalanced parentheses in pattern");
    }
    std::string out(input_.substr(start, i - start));
    pos_ = i;
    Advance();
    return out;
  }

  size_t offset() const { return current_.offset; }

 private:
  void Advance() {
    while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
    current_ = Token{};
    current_.offset = pos_;
    if (pos_ >= input_.size()) {
      current_.kind = Token::Kind::kEnd;
      return;
    }
    char c = input_[pos_];
    if (IsAsciiAlpha(c) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (IsAsciiAlpha(input_[pos_]) || IsAsciiDigit(input_[pos_]) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = std::string(input_.substr(start, pos_ - start));
      return;
    }
    if (IsAsciiDigit(c)) {
      size_t start = pos_;
      bool is_float = false;
      while (pos_ < input_.size() &&
             (IsAsciiDigit(input_[pos_]) || input_[pos_] == '.')) {
        // ".." is the path sugar, not a float part.
        if (input_[pos_] == '.') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') break;
          is_float = true;
        }
        ++pos_;
      }
      std::string text(input_.substr(start, pos_ - start));
      if (is_float) {
        current_.kind = Token::Kind::kFloat;
        current_.real = std::stod(text);
      } else {
        current_.kind = Token::Kind::kInteger;
        current_.integer = std::stoll(text);
      }
      current_.text = std::move(text);
      return;
    }
    if (c == '"' || c == '\'') {
      char q = c;
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != q) ++pos_;
      current_.kind = Token::Kind::kString;
      current_.text = std::string(input_.substr(start, pos_ - start));
      if (pos_ < input_.size()) ++pos_;  // closing quote
      return;
    }
    // Symbols, longest first.
    static constexpr std::string_view kSymbols[] = {
        "..", "!=", "<=", ">=", "(", ")", "[", "]", ",", ".", ":",
        "=",  "<",  ">",  "-",  "+",
    };
    for (std::string_view s : kSymbols) {
      if (input_.substr(pos_).substr(0, s.size()) == s) {
        current_.kind = Token::Kind::kSymbol;
        current_.text = std::string(s);
        pos_ += s.size();
        return;
      }
    }
    current_.kind = Token::Kind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
};

bool IsPathVarName(const std::string& name) {
  return StartsWith(name, "PATH_");
}
bool IsAttrVarName(const std::string& name) {
  return StartsWith(name, "ATT_");
}

class Parser {
 public:
  explicit Parser(std::string_view input) : lex_(input) {}

  Result<Statement> Parse() {
    Statement stmt;
    if (lex_.PeekIdent("select")) {
      SGMLQDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.select = std::move(select);
    } else if (lex_.PeekIdent("rank")) {
      // `rank(` at statement position is the ranked-retrieval form; a
      // bare `rank` ident stays an ordinary expression.
      Lexer saved = lex_;
      lex_.Next();
      if (lex_.PeekSymbol("(")) {
        SGMLQDB_ASSIGN_OR_RETURN(stmt.rank, ParseRank());
      } else {
        lex_ = saved;
        SGMLQDB_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      }
    } else {
      SGMLQDB_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    }
    if (lex_.Peek().kind != Token::Kind::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

 private:
  Status Err(const std::string& m) {
    return Status::ParseError("OQL: " + m + " at offset " +
                              std::to_string(lex_.offset()));
  }

  Result<std::shared_ptr<const SelectQuery>> ParseSelect() {
    if (!lex_.ConsumeIdent("select")) return Err("expected 'select'");
    auto q = std::make_shared<SelectQuery>();
    SGMLQDB_ASSIGN_OR_RETURN(q->select, ParseExpr());
    if (!lex_.ConsumeIdent("from")) return Err("expected 'from'");
    while (true) {
      SGMLQDB_ASSIGN_OR_RETURN(FromBinding b, ParseBinding());
      q->from.push_back(std::move(b));
      if (!lex_.ConsumeSymbol(",")) break;
    }
    if (lex_.ConsumeIdent("where")) {
      SGMLQDB_ASSIGN_OR_RETURN(q->where, ParseExpr());
    }
    if (lex_.ConsumeIdent("group")) {
      if (!lex_.ConsumeIdent("by")) return Err("expected 'by' after 'group'");
      while (true) {
        SGMLQDB_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        q->group_by.push_back(std::move(key));
        if (!lex_.ConsumeSymbol(",")) break;
      }
    }
    if (lex_.ConsumeIdent("order")) {
      if (!lex_.ConsumeIdent("by")) return Err("expected 'by' after 'order'");
      SGMLQDB_ASSIGN_OR_RETURN(q->order_by, ParseExpr());
      if (lex_.ConsumeIdent("desc")) {
        q->order_desc = true;
      } else {
        lex_.ConsumeIdent("asc");
      }
    }
    return std::shared_ptr<const SelectQuery>(std::move(q));
  }

  /// `rank(Root by <pattern>) [limit k]` — 'rank' already consumed.
  Result<std::shared_ptr<const RankStatement>> ParseRank() {
    if (!lex_.ConsumeSymbol("(")) return Err("expected '(' after 'rank'");
    if (lex_.Peek().kind != Token::Kind::kIdent) {
      return Err("expected a persistence root in rank()");
    }
    auto r = std::make_shared<RankStatement>();
    r->root = lex_.Next().text;
    if (!lex_.ConsumeIdent("by")) return Err("expected 'by' in rank()");
    SGMLQDB_ASSIGN_OR_RETURN(r->pattern, lex_.CapturePattern());
    if (!lex_.ConsumeSymbol(")")) return Err("expected ')' after rank pattern");
    if (lex_.ConsumeIdent("limit")) {
      if (lex_.Peek().kind != Token::Kind::kInteger) {
        return Err("expected an integer after 'limit'");
      }
      int64_t k = lex_.Next().integer;
      if (k < 0) return Err("limit must be non-negative");
      r->limit = static_cast<uint64_t>(k);
    }
    return std::shared_ptr<const RankStatement>(std::move(r));
  }

  Result<FromBinding> ParseBinding() {
    // Lookahead: IDENT 'in' -> membership binding; otherwise a path
    // binding `expr PATH_p...` / `expr .. attr...`.
    if (lex_.Peek().kind == Token::Kind::kIdent &&
        !IsPathVarName(lex_.Peek().text)) {
      Token ident = lex_.Peek();
      // Tentatively parse as expr; if followed by `in`, it was a
      // variable. Simple approach: consume ident, check 'in'.
      if (!IsReservedWord(ident.text)) {
        Lexer saved = lex_;
        lex_.Next();
        if (lex_.ConsumeIdent("in")) {
          FromBinding b;
          b.kind = FromBinding::Kind::kIn;
          b.var = ident.text;
          SGMLQDB_ASSIGN_OR_RETURN(b.expr, ParseExpr());
          return b;
        }
        lex_ = saved;
      }
    }
    // Path binding: base expression then PATH_ var or '..'.
    FromBinding b;
    b.kind = FromBinding::Kind::kPath;
    SGMLQDB_ASSIGN_OR_RETURN(b.expr, ParsePostfix());
    SGMLQDB_ASSIGN_OR_RETURN(b.path, ParsePathPattern());
    return b;
  }

  static bool IsReservedWord(const std::string& w) {
    for (const char* kw :
         {"select", "from", "where", "in", "and", "or", "not", "contains",
          "tuple", "list", "set", "near"}) {
      if (EqualsIgnoreCase(w, kw)) return true;
    }
    return false;
  }

  /// Parses `PATH_p(x).title(t)[0]...` or `.. title(t)...`.
  Result<PathPattern> ParsePathPattern() {
    PathPattern p;
    if (lex_.ConsumeSymbol("..")) {
      // Anonymous variable; first step is a bare attribute name.
      if (lex_.Peek().kind != Token::Kind::kIdent) {
        return Err("expected an attribute name after '..'");
      }
      SGMLQDB_RETURN_IF_ERROR(ParseBareStep(&p));
    } else if (lex_.Peek().kind == Token::Kind::kIdent &&
               IsPathVarName(lex_.Peek().text)) {
      p.path_var = lex_.Next().text;
      if (lex_.ConsumeSymbol("(")) {
        if (lex_.Peek().kind != Token::Kind::kIdent) {
          return Err("expected a capture variable");
        }
        p.var_capture = lex_.Next().text;
        if (!lex_.ConsumeSymbol(")")) return Err("expected ')'");
      }
    } else {
      return Err("expected PATH_ variable or '..'");
    }
    while (true) {
      if (lex_.ConsumeSymbol(".")) {
        SGMLQDB_RETURN_IF_ERROR(ParseBareStep(&p));
        continue;
      }
      if (lex_.ConsumeSymbol("[")) {
        PatternStep s;
        if (lex_.Peek().kind == Token::Kind::kInteger) {
          s.kind = PatternStep::Kind::kIndexConst;
          s.index = lex_.Next().integer;
        } else if (lex_.Peek().kind == Token::Kind::kIdent) {
          s.kind = PatternStep::Kind::kIndexVar;
          s.name = lex_.Next().text;
        } else {
          return Err("expected an index");
        }
        if (!lex_.ConsumeSymbol("]")) return Err("expected ']'");
        SGMLQDB_RETURN_IF_ERROR(MaybeCapture(&s));
        p.steps.push_back(std::move(s));
        continue;
      }
      break;
    }
    return p;
  }

  /// One `.attr` / `.ATT_a` step (the dot already consumed, or a bare
  /// first step after '..').
  Status ParseBareStep(PathPattern* p) {
    if (lex_.Peek().kind != Token::Kind::kIdent) {
      return Err("expected an attribute name");
    }
    PatternStep s;
    std::string name = lex_.Next().text;
    s.kind = IsAttrVarName(name) ? PatternStep::Kind::kAttrVar
                                 : PatternStep::Kind::kAttr;
    s.name = std::move(name);
    SGMLQDB_RETURN_IF_ERROR(MaybeCapture(&s));
    p->steps.push_back(std::move(s));
    return Status::OK();
  }

  Status MaybeCapture(PatternStep* s) {
    if (!lex_.ConsumeSymbol("(")) return Status::OK();
    if (lex_.Peek().kind != Token::Kind::kIdent) {
      return Err("expected a capture variable");
    }
    s->capture = lex_.Next().text;
    if (!lex_.ConsumeSymbol(")")) return Err("expected ')'");
    return Status::OK();
  }

  // ---- Expressions ---------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (lex_.ConsumeIdent("or")) {
      SGMLQDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(Expr::BinOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (lex_.ConsumeIdent("and")) {
      SGMLQDB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(Expr::BinOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (lex_.ConsumeIdent("not")) {
      SGMLQDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kNot;
      e->args = {std::move(inner)};
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr left, ParseMinus());
    if (lex_.ConsumeIdent("contains")) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kContains;
      e->args = {std::move(left)};
      SGMLQDB_ASSIGN_OR_RETURN(e->pattern, lex_.CapturePattern());
      return ExprPtr(std::move(e));
    }
    struct OpMap {
      const char* sym;
      Expr::BinOp op;
    };
    static constexpr OpMap kOps[] = {
        {"!=", Expr::BinOp::kNe}, {"<=", Expr::BinOp::kLe},
        {">=", Expr::BinOp::kGe}, {"=", Expr::BinOp::kEq},
        {"<", Expr::BinOp::kLt},  {">", Expr::BinOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (lex_.ConsumeSymbol(m.sym)) {
        SGMLQDB_ASSIGN_OR_RETURN(ExprPtr right, ParseMinus());
        return MakeBinary(m.op, left, right);
      }
    }
    return left;
  }

  Result<ExprPtr> ParseMinus() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr left, ParsePathSet());
    while (lex_.PeekSymbol("-")) {
      lex_.Next();
      SGMLQDB_ASSIGN_OR_RETURN(ExprPtr right, ParsePathSet());
      left = MakeBinary(Expr::BinOp::kMinus, left, right);
    }
    return left;
  }

  /// `expr PATH_p` (path-set expression) or a plain postfix expr.
  Result<ExprPtr> ParsePathSet() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr base, ParsePostfix());
    if (lex_.Peek().kind == Token::Kind::kIdent &&
        IsPathVarName(lex_.Peek().text)) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kPathSet;
      e->args = {std::move(base)};
      SGMLQDB_ASSIGN_OR_RETURN(e->path, ParsePathPattern());
      return ExprPtr(std::move(e));
    }
    return base;
  }

  Result<ExprPtr> ParsePostfix() {
    SGMLQDB_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (true) {
      if (lex_.ConsumeSymbol(".")) {
        if (lex_.Peek().kind != Token::Kind::kIdent) {
          return Err("expected an attribute after '.'");
        }
        auto a = std::make_shared<Expr>();
        a->kind = Expr::Kind::kAttr;
        a->ident = lex_.Next().text;
        a->args = {std::move(e)};
        e = std::move(a);
        continue;
      }
      if (lex_.ConsumeSymbol("[")) {
        if (lex_.Peek().kind != Token::Kind::kInteger) {
          return Err("expected a constant index");
        }
        auto a = std::make_shared<Expr>();
        a->kind = Expr::Kind::kIndex;
        a->index = lex_.Next().integer;
        a->args = {std::move(e)};
        if (!lex_.ConsumeSymbol("]")) return Err("expected ']'");
        e = std::move(a);
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    switch (t.kind) {
      case Token::Kind::kString: {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kLiteral;
        e->literal = om::Value::String(lex_.Next().text);
        return ExprPtr(std::move(e));
      }
      case Token::Kind::kInteger: {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kLiteral;
        e->literal = om::Value::Integer(lex_.Next().integer);
        return ExprPtr(std::move(e));
      }
      case Token::Kind::kFloat: {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kLiteral;
        e->literal = om::Value::Float(lex_.Next().real);
        return ExprPtr(std::move(e));
      }
      case Token::Kind::kSymbol:
        if (lex_.ConsumeSymbol("(")) {
          if (lex_.PeekIdent("select")) {
            SGMLQDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
            auto sub = std::make_shared<Expr>();
            sub->kind = Expr::Kind::kSelect;
            sub->select = std::move(select);
            if (!lex_.ConsumeSymbol(")")) return Err("expected ')'");
            return ExprPtr(std::move(sub));
          }
          SGMLQDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          if (!lex_.ConsumeSymbol(")")) return Err("expected ')'");
          return inner;
        }
        return Err("unexpected symbol '" + t.text + "'");
      case Token::Kind::kIdent:
        break;
      default:
        return Err("unexpected end of input");
    }
    std::string name = lex_.Next().text;
    if (EqualsIgnoreCase(name, "true") || EqualsIgnoreCase(name, "false")) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kLiteral;
      e->literal = om::Value::Boolean(EqualsIgnoreCase(name, "true"));
      return ExprPtr(std::move(e));
    }
    if (EqualsIgnoreCase(name, "nil")) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kLiteral;
      e->literal = om::Value::Nil();
      return ExprPtr(std::move(e));
    }
    if (EqualsIgnoreCase(name, "select")) {
      return Err("nested 'select' must be parenthesized as an argument");
    }
    if (EqualsIgnoreCase(name, "tuple")) {
      if (!lex_.ConsumeSymbol("(")) return Err("expected '(' after tuple");
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kTupleCons;
      if (!lex_.ConsumeSymbol(")")) {
        while (true) {
          if (lex_.Peek().kind != Token::Kind::kIdent) {
            return Err("expected a field name");
          }
          std::string field = lex_.Next().text;
          if (!lex_.ConsumeSymbol(":")) return Err("expected ':'");
          SGMLQDB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          e->fields.emplace_back(std::move(field), std::move(v));
          if (lex_.ConsumeSymbol(",")) continue;
          if (lex_.ConsumeSymbol(")")) break;
          return Err("expected ',' or ')' in tuple constructor");
        }
      }
      return ExprPtr(std::move(e));
    }
    if (EqualsIgnoreCase(name, "list") || EqualsIgnoreCase(name, "set")) {
      if (!lex_.ConsumeSymbol("(")) {
        return Err("expected '(' after " + name);
      }
      auto e = std::make_shared<Expr>();
      e->kind = EqualsIgnoreCase(name, "list") ? Expr::Kind::kListCons
                                               : Expr::Kind::kSetCons;
      if (!lex_.ConsumeSymbol(")")) {
        while (true) {
          SGMLQDB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          e->args.push_back(std::move(v));
          if (lex_.ConsumeSymbol(",")) continue;
          if (lex_.ConsumeSymbol(")")) break;
          return Err("expected ',' or ')'");
        }
      }
      return ExprPtr(std::move(e));
    }
    // Function call?
    if (lex_.PeekSymbol("(")) {
      lex_.Next();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kCall;
      e->ident = std::move(name);
      if (!lex_.ConsumeSymbol(")")) {
        while (true) {
          if (lex_.PeekIdent("select")) {
            SGMLQDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
            auto sub = std::make_shared<Expr>();
            sub->kind = Expr::Kind::kSelect;
            sub->select = std::move(select);
            e->args.push_back(std::move(sub));
          } else {
            SGMLQDB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
            e->args.push_back(std::move(v));
          }
          if (lex_.ConsumeSymbol(",")) continue;
          if (lex_.ConsumeSymbol(")")) break;
          return Err("expected ',' or ')' in call");
        }
      }
      return ExprPtr(std::move(e));
    }
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::kIdent;
    e->ident = std::move(name);
    return ExprPtr(std::move(e));
  }

  ExprPtr MakeBinary(Expr::BinOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->args = {std::move(l), std::move(r)};
    return e;
  }

  Lexer lex_;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace sgmlqdb::oql
