#include "oql/translate.h"

#include <map>
#include <set>

#include "base/strutil.h"
#include "om/subtype.h"
#include "text/pattern.h"

namespace sgmlqdb::oql {

using calculus::AttrTerm;
using calculus::DataTerm;
using calculus::DataTermPtr;
using calculus::Formula;
using calculus::FormulaPtr;
using calculus::PathTerm;
using calculus::Query;
using calculus::Sort;
using calculus::Variable;
using om::Schema;
using om::Type;
using om::TypeKind;
using om::Value;

namespace {

/// A translated value expression with its inferred static type.
struct TypedTerm {
  DataTermPtr term;
  Type type;  // Any when unknown
};

class Translator {
 public:
  explicit Translator(const Schema& schema) : schema_(schema) {}

  Result<Translated> Run(const Statement& stmt) {
    Translated out;
    if (stmt.rank != nullptr) {
      SGMLQDB_RETURN_IF_ERROR(TranslateRank(*stmt.rank, &out));
      return out;
    }
    if (stmt.select != nullptr) {
      out.is_query = true;
      SGMLQDB_RETURN_IF_ERROR(TranslateSelect(*stmt.select, &out));
      return out;
    }
    SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*stmt.expr));
    out.term = t.term;
    return out;
  }

 private:
  struct ScopeVar {
    Sort sort;
    Type type;
  };

  // -- Rank statements --------------------------------------------------

  Status TranslateRank(const RankStatement& r, Translated* out) {
    const om::NameDef* def = schema_.FindName(r.root);
    if (def == nullptr) {
      return Status::TypeError("unknown persistence root '" + r.root +
                               "' in rank()");
    }
    SGMLQDB_ASSIGN_OR_RETURN(text::Pattern pattern,
                             text::Pattern::Parse(r.pattern));
    auto post = std::make_shared<rank::PostSpec>();
    post->kind = rank::PostSpec::Kind::kRank;
    post->rank.root_name = r.root;
    post->rank.pattern_text = r.pattern;
    SGMLQDB_RETURN_IF_ERROR(
        rank::ExtractRankWords(pattern, &post->rank.words));
    post->rank.pattern = std::move(pattern);
    post->rank.limit = r.limit;
    out->is_query = false;
    out->post = std::move(post);
    return Status::OK();
  }

  // -- Select queries ---------------------------------------------------

  Status TranslateSelect(const SelectQuery& select, Translated* out) {
    if (!select.group_by.empty() || select.order_by != nullptr) {
      if (nested_) {
        return Status::Unsupported(
            "group by / order by are not allowed in subqueries");
      }
      if (!select.group_by.empty() && select.order_by != nullptr) {
        return Status::Unsupported(
            "group by and order by cannot be combined");
      }
    }
    std::vector<FormulaPtr> conjuncts;
    for (const FromBinding& b : select.from) {
      SGMLQDB_RETURN_IF_ERROR(TranslateBinding(b, &conjuncts));
    }
    if (select.where != nullptr) {
      SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr w,
                               TranslateCondition(*select.where));
      conjuncts.push_back(std::move(w));
    }

    if (!select.group_by.empty()) {
      return TranslateAggregate(select, std::move(conjuncts), out);
    }

    SGMLQDB_ASSIGN_OR_RETURN(TypedTerm result, TranslateValue(*select.select));
    conjuncts.push_back(
        Formula::Eq(DataTerm::Var("__r"), std::move(result.term)));

    Query q;
    q.head = {calculus::DataVar("__r")};
    if (select.order_by != nullptr) {
      // Bind the sort key next to the value: distinct (key, value)
      // pairs, ordered by the post-processing fold.
      SGMLQDB_ASSIGN_OR_RETURN(TypedTerm key,
                               TranslateValue(*select.order_by));
      conjuncts.push_back(
          Formula::Eq(DataTerm::Var("__o0"), std::move(key.term)));
      q.head.insert(q.head.begin(), calculus::DataVar("__o0"));
      auto post = std::make_shared<rank::PostSpec>();
      post->kind = rank::PostSpec::Kind::kOrderBy;
      post->order.descending = select.order_desc;
      out->post = std::move(post);
    }

    // Quantify every scope variable; the head variables stay free.
    std::vector<Variable> quantified;
    for (const auto& [name, var] : scope_) {
      quantified.push_back(Variable{var.sort, name});
    }
    q.body = Formula::Exists(std::move(quantified),
                             Formula::And(std::move(conjuncts)));
    out->query = std::move(q);
    return Status::OK();
  }

  /// `select agg(e) from ... group by k1, ..., kn`: the query's rows
  /// are the *distinct bindings* (every scope variable stays in the
  /// head — no Exists projection), each carrying its group keys in
  /// __g0..__g{n-1} and the aggregate argument in __a0; the
  /// post-processing fold then aggregates each binding exactly once
  /// (bag semantics over the join result, SQL-style).
  Status TranslateAggregate(const SelectQuery& select,
                            std::vector<FormulaPtr> conjuncts,
                            Translated* out) {
    const Expr& sel = *select.select;
    const rank::AggKind* kind =
        sel.kind == Expr::Kind::kCall
            ? rank::AggKindFromName(AsciiToLower(sel.ident))
            : nullptr;
    if (kind == nullptr || sel.args.size() != 1) {
      return Status::Unsupported(
          "with group by, the select expression must be a single "
          "aggregate call: count/sum/min/max/avg(expr)");
    }
    Query q;
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      SGMLQDB_ASSIGN_OR_RETURN(TypedTerm key,
                               TranslateValue(*select.group_by[i]));
      const std::string col = "__g" + std::to_string(i);
      conjuncts.push_back(Formula::Eq(DataTerm::Var(col),
                                      std::move(key.term)));
      q.head.push_back(calculus::DataVar(col));
    }
    SGMLQDB_ASSIGN_OR_RETURN(TypedTerm arg, TranslateValue(*sel.args[0]));
    conjuncts.push_back(
        Formula::Eq(DataTerm::Var("__a0"), std::move(arg.term)));
    q.head.push_back(calculus::DataVar("__a0"));
    for (const auto& [name, var] : scope_) {
      q.head.push_back(Variable{var.sort, name});
    }
    q.body = Formula::And(std::move(conjuncts));
    auto post = std::make_shared<rank::PostSpec>();
    post->kind = rank::PostSpec::Kind::kAggregate;
    post->agg.kind = *kind;
    post->agg.key_count = select.group_by.size();
    out->query = std::move(q);
    out->post = std::move(post);
    return Status::OK();
  }

  Status TranslateBinding(const FromBinding& b,
                          std::vector<FormulaPtr>* conjuncts) {
    if (b.kind == FromBinding::Kind::kIn) {
      SGMLQDB_ASSIGN_OR_RETURN(TypedTerm coll, TranslateValue(*b.expr));
      Type elem = Type::Any();
      if (coll.type.kind() == TypeKind::kList ||
          coll.type.kind() == TypeKind::kSet) {
        elem = coll.type.element_type();
      } else if (coll.type.kind() != TypeKind::kAny) {
        return Status::TypeError("'in' range is not a collection: " +
                                 coll.type.ToString());
      }
      SGMLQDB_RETURN_IF_ERROR(Declare(b.var, Sort::kData, elem));
      conjuncts->push_back(
          Formula::In(DataTerm::Var(b.var), std::move(coll.term)));
      return Status::OK();
    }
    // Path binding: base PATH_p.steps...
    SGMLQDB_ASSIGN_OR_RETURN(TypedTerm base, TranslateValue(*b.expr));
    SGMLQDB_ASSIGN_OR_RETURN(PathTerm path, TranslatePattern(b.path));
    conjuncts->push_back(Formula::PathPred(std::move(base.term),
                                           std::move(path)));
    return Status::OK();
  }

  Result<PathTerm> TranslatePattern(const PathPattern& p) {
    PathTerm out;
    std::string pvar = p.path_var;
    if (pvar.empty()) {
      pvar = "__anon_path_" + std::to_string(next_anon_++);
    }
    SGMLQDB_RETURN_IF_ERROR(Declare(pvar, Sort::kPath, Type::Any()));
    out = out + PathTerm::Var(pvar);
    if (!p.var_capture.empty()) {
      SGMLQDB_RETURN_IF_ERROR(
          Declare(p.var_capture, Sort::kData, Type::Any()));
      out = out + PathTerm::Capture(p.var_capture);
    }
    for (const PatternStep& s : p.steps) {
      switch (s.kind) {
        case PatternStep::Kind::kAttr:
          out = out + PathTerm::Attr(s.name);
          break;
        case PatternStep::Kind::kAttrVar:
          SGMLQDB_RETURN_IF_ERROR(Declare(s.name, Sort::kAttr, Type::Any()));
          out = out + PathTerm::AttrVariable(s.name);
          break;
        case PatternStep::Kind::kIndexConst:
          out = out + PathTerm::Index(s.index);
          break;
        case PatternStep::Kind::kIndexVar:
          SGMLQDB_RETURN_IF_ERROR(
              Declare(s.name, Sort::kData, Type::Integer()));
          out = out + PathTerm::IndexVariable(s.name);
          break;
      }
      if (!s.capture.empty()) {
        SGMLQDB_RETURN_IF_ERROR(
            Declare(s.capture, Sort::kData, Type::Any()));
        out = out + PathTerm::Capture(s.capture);
      }
    }
    return out;
  }

  Status Declare(const std::string& name, Sort sort, Type type) {
    auto it = scope_.find(name);
    if (it != scope_.end()) {
      if (it->second.sort != sort) {
        return Status::TypeError("variable '" + name +
                                 "' used with two different sorts");
      }
      return Status::OK();  // repeated use = join
    }
    scope_[name] = ScopeVar{sort, std::move(type)};
    return Status::OK();
  }

  // -- Value expressions -------------------------------------------------

  Result<TypedTerm> TranslateValue(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIdent: {
        auto it = scope_.find(e.ident);
        if (it != scope_.end()) {
          switch (it->second.sort) {
            case Sort::kData:
              return TypedTerm{DataTerm::Var(e.ident), it->second.type};
            case Sort::kPath:
              return TypedTerm{
                  DataTerm::PathAsData(PathTerm::Var(e.ident)),
                  Type::List(Type::Any())};
            case Sort::kAttr:
              return TypedTerm{DataTerm::AttrAsData(AttrTerm::Var(e.ident)),
                               Type::String()};
          }
        }
        if (const om::NameDef* def = schema_.FindName(e.ident)) {
          return TypedTerm{DataTerm::Name(e.ident), def->type};
        }
        return Status::TypeError("unknown identifier '" + e.ident + "'");
      }
      case Expr::Kind::kLiteral: {
        Type t = Type::Any();
        switch (e.literal.kind()) {
          case om::ValueKind::kInteger:
            t = Type::Integer();
            break;
          case om::ValueKind::kFloat:
            t = Type::Float();
            break;
          case om::ValueKind::kBoolean:
            t = Type::Boolean();
            break;
          case om::ValueKind::kString:
            t = Type::String();
            break;
          default:
            break;
        }
        return TypedTerm{DataTerm::Const(e.literal), t};
      }
      case Expr::Kind::kAttr: {
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm base, TranslateValue(*e.args[0]));
        SGMLQDB_ASSIGN_OR_RETURN(Type result,
                                 ResolveAttr(base.type, e.ident));
        return TypedTerm{
            DataTerm::Function("__select_attr",
                               {base.term,
                                DataTerm::Const(Value::String(e.ident))}),
            result};
      }
      case Expr::Kind::kIndex: {
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm base, TranslateValue(*e.args[0]));
        Type elem = Type::Any();
        Type t = base.type;
        if (t.kind() == TypeKind::kClass) {
          Result<Type> eff = schema_.EffectiveType(t.class_name());
          if (eff.ok()) t = eff.value();
        }
        if (t.kind() == TypeKind::kList) elem = t.element_type();
        return TypedTerm{
            DataTerm::Function(
                "__index",
                {base.term, DataTerm::Const(Value::Integer(e.index))}),
            elem};
      }
      case Expr::Kind::kTupleCons: {
        std::vector<std::pair<AttrTerm, DataTermPtr>> fields;
        std::vector<std::pair<std::string, Type>> field_types;
        for (const auto& [name, sub] : e.fields) {
          SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*sub));
          fields.emplace_back(AttrTerm::Name(name), t.term);
          field_types.emplace_back(name, t.type);
        }
        return TypedTerm{DataTerm::TupleCons(std::move(fields)),
                         Type::Tuple(std::move(field_types))};
      }
      case Expr::Kind::kListCons:
      case Expr::Kind::kSetCons: {
        std::vector<DataTermPtr> elems;
        Type elem_type = Type::Any();
        bool first = true;
        for (const ExprPtr& sub : e.args) {
          SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*sub));
          if (first) {
            elem_type = t.type;
            first = false;
          } else if (!Type::Equals(elem_type, t.type)) {
            // §4.2: elements need a common supertype.
            Result<Type> lcs =
                om::LeastCommonSupertype(elem_type, t.type, schema_);
            if (!lcs.ok()) return lcs.status();
            elem_type = lcs.value();
          }
          elems.push_back(t.term);
        }
        if (e.kind == Expr::Kind::kListCons) {
          return TypedTerm{DataTerm::ListCons(std::move(elems)),
                           Type::List(elem_type)};
        }
        return TypedTerm{DataTerm::SetCons(std::move(elems)),
                         Type::Set(elem_type)};
      }
      case Expr::Kind::kCall:
        return TranslateCall(e);
      case Expr::Kind::kBinary: {
        if (e.op == Expr::BinOp::kMinus) {
          SGMLQDB_ASSIGN_OR_RETURN(TypedTerm l, TranslateValue(*e.args[0]));
          SGMLQDB_ASSIGN_OR_RETURN(TypedTerm r, TranslateValue(*e.args[1]));
          return TypedTerm{
              DataTerm::Function("set_difference", {l.term, r.term}),
              l.type};
        }
        return Status::Unsupported(
            "comparison/boolean operators are conditions, not values");
      }
      case Expr::Kind::kPathSet:
        return TranslatePathSet(e);
      case Expr::Kind::kSelect: {
        Translator nested(schema_);
        nested.nested_ = true;
        Statement s;
        s.select = e.select;
        SGMLQDB_ASSIGN_OR_RETURN(Translated t, nested.Run(s));
        auto q = std::make_shared<Query>(std::move(t.query));
        return TypedTerm{DataTerm::Subquery(std::move(q)),
                         Type::Set(Type::Any())};
      }
      default:
        return Status::Unsupported("expression cannot be used as a value");
    }
  }

  /// `base PATH_p.steps` in value position: the set of path values
  /// (plus captures projected away) — used by Q4.
  Result<TypedTerm> TranslatePathSet(const Expr& e) {
    Translator nested(schema_);
    // Share the enclosing scope so the base may reference bound vars.
    nested.scope_ = scope_;
    SGMLQDB_ASSIGN_OR_RETURN(TypedTerm base,
                             nested.TranslateValue(*e.args[0]));
    SGMLQDB_ASSIGN_OR_RETURN(PathTerm path, nested.TranslatePattern(e.path));
    std::string pvar = e.path.path_var;
    if (pvar.empty()) {
      return Status::TypeError(
          "a path-set expression needs a named PATH_ variable");
    }
    auto q = std::make_shared<Query>();
    q->head = {calculus::PathVar(pvar)};
    // Quantify the other pattern variables.
    std::vector<Variable> quantified;
    for (const auto& [name, var] : nested.scope_) {
      if (name == pvar || scope_.count(name) > 0) continue;
      quantified.push_back(Variable{var.sort, name});
    }
    FormulaPtr body = Formula::PathPred(base.term, path);
    if (!quantified.empty()) {
      body = Formula::Exists(std::move(quantified), std::move(body));
    }
    q->body = std::move(body);
    return TypedTerm{DataTerm::Subquery(std::move(q)),
                     Type::Set(Type::Any())};
  }

  Result<TypedTerm> TranslateCall(const Expr& e) {
    std::vector<DataTermPtr> args;
    std::vector<Type> arg_types;
    for (const ExprPtr& sub : e.args) {
      SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*sub));
      args.push_back(t.term);
      arg_types.push_back(t.type);
    }
    const std::string fn = AsciiToLower(e.ident);
    Type result = Type::Any();
    if (fn == "count" || fn == "length") {
      result = Type::Integer();
    } else if (fn == "text" || fn == "name") {
      result = Type::String();
    } else if ((fn == "first" || fn == "last" || fn == "element") &&
               !arg_types.empty()) {
      Type t = arg_types[0];
      if (t.kind() == TypeKind::kList || t.kind() == TypeKind::kSet) {
        result = t.element_type();
      }
    } else if (fn == "set_to_list" && !arg_types.empty() &&
               arg_types[0].kind() == TypeKind::kSet) {
      result = Type::List(arg_types[0].element_type());
    } else if (fn == "positions") {
      result = Type::List(Type::Integer());
    }
    return TypedTerm{DataTerm::Function(fn, std::move(args)), result};
  }

  /// Static attribute resolution with implicit dereferencing and
  /// implicit selectors (§4.2): a TypeError when no alternative of a
  /// union supplies the attribute ("this leads to a type error").
  Result<Type> ResolveAttr(const Type& type, const std::string& attr) {
    switch (type.kind()) {
      case TypeKind::kAny:
        return Type::Any();  // dynamic — checked at evaluation
      case TypeKind::kClass: {
        SGMLQDB_ASSIGN_OR_RETURN(Type effective,
                                 schema_.EffectiveType(type.class_name()));
        return ResolveAttr(effective, attr);
      }
      case TypeKind::kTuple: {
        std::optional<Type> f = type.FindField(attr);
        if (f.has_value()) return *f;
        return Status::TypeError("type " + type.ToString() +
                                 " has no attribute '" + attr + "'");
      }
      case TypeKind::kUnion: {
        // Direct marker access.
        std::optional<Type> direct = type.FindField(attr);
        if (direct.has_value()) return *direct;
        // Implicit selectors: search alternatives.
        std::vector<Type> found;
        for (size_t i = 0; i < type.size(); ++i) {
          Type alt = type.FieldType(i);
          if (alt.kind() == TypeKind::kClass) {
            Result<Type> eff = schema_.EffectiveType(alt.class_name());
            if (eff.ok()) alt = eff.value();
          }
          if (alt.kind() == TypeKind::kTuple) {
            std::optional<Type> f = alt.FindField(attr);
            if (f.has_value()) found.push_back(*f);
          }
        }
        if (found.empty()) {
          return Status::TypeError(
              "no alternative of " + type.ToString() +
              " has attribute '" + attr + "' (implicit selector fails)");
        }
        Type merged = found[0];
        for (size_t i = 1; i < found.size(); ++i) {
          if (Type::Equals(merged, found[i])) continue;
          Result<Type> lcs =
              om::LeastCommonSupertype(merged, found[i], schema_);
          if (lcs.ok()) {
            merged = lcs.value();
          } else {
            // §5.3: a system-supplied marked union is generated.
            merged = Type::Union({{"alpha1", merged},
                                  {"alpha2", found[i]}});
          }
        }
        return merged;
      }
      default:
        return Status::TypeError("type " + type.ToString() +
                                 " has no attributes");
    }
  }

  // -- Conditions ---------------------------------------------------------

  Result<FormulaPtr> TranslateCondition(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kBinary: {
        switch (e.op) {
          case Expr::BinOp::kAnd: {
            SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr l,
                                     TranslateCondition(*e.args[0]));
            SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr r,
                                     TranslateCondition(*e.args[1]));
            return Formula::And({std::move(l), std::move(r)});
          }
          case Expr::BinOp::kOr: {
            SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr l,
                                     TranslateCondition(*e.args[0]));
            SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr r,
                                     TranslateCondition(*e.args[1]));
            return Formula::Or({std::move(l), std::move(r)});
          }
          default:
            break;
        }
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm l, TranslateValue(*e.args[0]));
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm r, TranslateValue(*e.args[1]));
        switch (e.op) {
          case Expr::BinOp::kEq:
            return Formula::Eq(l.term, r.term);
          case Expr::BinOp::kNe:
            return Formula::Not(Formula::Eq(l.term, r.term));
          case Expr::BinOp::kLt:
            return Formula::Less(l.term, r.term);
          case Expr::BinOp::kGt:
            return Formula::Less(r.term, l.term);
          case Expr::BinOp::kLe:
            return Formula::Not(Formula::Less(r.term, l.term));
          case Expr::BinOp::kGe:
            return Formula::Not(Formula::Less(l.term, r.term));
          default:
            return Status::Unsupported("operator in condition position");
        }
      }
      case Expr::Kind::kNot: {
        SGMLQDB_ASSIGN_OR_RETURN(FormulaPtr inner,
                                 TranslateCondition(*e.args[0]));
        return Formula::Not(std::move(inner));
      }
      case Expr::Kind::kContains: {
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*e.args[0]));
        return Formula::Interpreted(
            "contains",
            {t.term, DataTerm::Const(Value::String(e.pattern))});
      }
      case Expr::Kind::kCall: {
        if (EqualsIgnoreCase(e.ident, "near")) {
          std::vector<DataTermPtr> args;
          for (const ExprPtr& sub : e.args) {
            SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(*sub));
            args.push_back(t.term);
          }
          return Formula::Interpreted("near", std::move(args));
        }
        // Boolean-valued function.
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(e));
        return Formula::Eq(t.term, DataTerm::Const(Value::Boolean(true)));
      }
      default: {
        SGMLQDB_ASSIGN_OR_RETURN(TypedTerm t, TranslateValue(e));
        return Formula::Eq(t.term, DataTerm::Const(Value::Boolean(true)));
      }
    }
  }

  const Schema& schema_;
  std::map<std::string, ScopeVar> scope_;
  size_t next_anon_ = 0;
  /// True for subquery translators: group by / order by are
  /// statement-level constructs (their fold runs after the engine).
  bool nested_ = false;
};

}  // namespace

Result<Translated> Translate(const Schema& schema,
                             const Statement& statement) {
  return Translator(schema).Run(statement);
}

}  // namespace sgmlqdb::oql
