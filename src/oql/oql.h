// Public entry point for the extended O2SQL language (paper §4):
// parse, typecheck/translate to the calculus, evaluate with either the
// naive reference evaluator or the §5.4 algebraic engine.

#ifndef SGMLQDB_OQL_OQL_H_
#define SGMLQDB_OQL_OQL_H_

#include <string_view>

#include "base/status.h"
#include "calculus/eval.h"
#include "om/schema.h"

namespace sgmlqdb::oql {

enum class Engine {
  kNaive,      // §5.2 reference semantics
  kAlgebraic,  // §5.4 schema-guided algebra (falls back to naive for
               // shapes outside the compilable fragment)
};

struct OqlOptions {
  Engine engine = Engine::kNaive;
};

/// Executes an OQL statement. Select queries return a set (of values,
/// or of head tuples); bare expressions return their value.
Result<om::Value> ExecuteOql(const calculus::EvalContext& ctx,
                             const om::Schema& schema,
                             std::string_view statement,
                             const OqlOptions& options = {});

}  // namespace sgmlqdb::oql

#endif  // SGMLQDB_OQL_OQL_H_
