// Public entry point for the extended O2SQL language (paper §4):
// parse, typecheck/translate to the calculus, evaluate with either the
// naive reference evaluator or the §5.4 algebraic engine.
//
// The pipeline is split into a *prepare* step (parse -> typecheck ->
// translate -> optionally compile to the algebra) producing a reusable
// PreparedStatement, and an *execute* step that only touches data.
// Preparation depends on the schema alone, so a PreparedStatement can
// be cached and shared across threads (it is immutable after Prepare);
// the service layer's plan cache is built on exactly this split.

#ifndef SGMLQDB_OQL_OQL_H_
#define SGMLQDB_OQL_OQL_H_

#include <optional>
#include <string_view>
#include <vector>

#include "algebra/compile.h"
#include "algebra/optimize.h"
#include "base/status.h"
#include "calculus/eval.h"
#include "om/schema.h"
#include "rank/scoring.h"

namespace sgmlqdb::oql {

enum class Engine {
  kNaive,      // §5.2 reference semantics
  kAlgebraic,  // §5.4 schema-guided algebra (falls back to naive for
               // shapes outside the compilable fragment)
};

struct OqlOptions {
  Engine engine = Engine::kNaive;
  /// Run the algebraic optimizer (text-index pushdown, filter
  /// pushdown, branch pruning) over the compiled plan. No effect on
  /// the naive engine.
  bool optimize = true;
};

/// The cacheable artifact of the parse -> calculus -> algebra front
/// half of the pipeline. Immutable once built; safe to share across
/// threads executing concurrently.
struct PreparedStatement {
  Engine engine = Engine::kNaive;
  /// True for select-from-where statements (calculus queries); false
  /// for bare expressions (closed data terms).
  bool is_query = false;
  /// The translated calculus query (the naive engine's input, and the
  /// algebraic engine's fallback for non-compilable shapes).
  calculus::Query query;
  /// The closed term of a bare expression (is_query == false).
  calculus::DataTermPtr term;
  /// The §5.4 plan, present iff engine == kAlgebraic and the query is
  /// inside the compilable fragment.
  std::optional<algebra::CompiledQuery> compiled;
  /// What the optimizer did to `compiled` (absent when not run).
  std::optional<algebra::OptimizeStats> optimize_stats;
  /// True when the optimizer pass failed and the statement carries the
  /// unoptimized plan instead (graceful degradation — the query still
  /// runs, the service layer counts the event).
  bool degraded_optimizer = false;
  /// Persistence-root names the statement references, sorted (from
  /// calculus::CollectRootNames; includes names inside subqueries).
  /// The sharded service routes by where these are bound — computed
  /// once here so routing never re-walks the calculus per execution.
  std::vector<std::string> root_refs;
  /// Post-processing the statement needs (rank / group-by aggregate /
  /// order-by); null for plain statements. Post statements execute
  /// through the two-phase partial protocol: ExecutePreparedPartial
  /// produces a mergeable partial per store, rank::FinalizePartials
  /// merges them (one partial for single-store execution).
  std::shared_ptr<const rank::PostSpec> post;
  /// The post statement's algebra plan (engine == kAlgebraic): a
  /// TopKScore leaf for rank, or the compiled query plan wrapped in
  /// GroupAggregate / OrderBy *after* the optimizer pass (the wrapper
  /// sits above the Distinct(UnionAll(...)) shape the optimizer
  /// rewrites). Its rows are partial rows, never head tuples — so it
  /// is executed here and by the sharded service, not by
  /// algebra::ExecuteCompiled.
  algebra::PlanPtr post_plan;

  /// Union branches of the algebraic expansion (0 when not compiled).
  size_t branch_count() const {
    return compiled.has_value() ? compiled->branch_count : 0;
  }
};

/// Runs the data-independent front half: parse, typecheck, translate,
/// and — for the algebraic engine — compile. A query outside the
/// compilable fragment prepares with `compiled` empty (execution falls
/// back to the reference evaluator, as before).
Result<PreparedStatement> Prepare(const om::Schema& schema,
                                  std::string_view statement,
                                  const OqlOptions& options = {});

/// Runs a prepared statement against the data in `ctx`. A non-null
/// `branch_executor` lets an algebraic plan run its union branches in
/// parallel (results are identical and deterministically ordered).
Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared,
                                  algebra::BranchExecutor* branch_executor);
Result<om::Value> ExecutePrepared(const calculus::EvalContext& ctx,
                                  const PreparedStatement& prepared);

/// Runs a post statement (prepared.post != null) against one store and
/// returns its *partial* (see rank::PostRowsToPartial) — the scatter
/// half of the two-phase protocol. Ranked statements score with
/// ctx.rank_scoring when set (the service injects cross-shard global
/// statistics there); aggregates and order-by are pure row folds.
Result<om::Value> ExecutePreparedPartial(
    const calculus::EvalContext& ctx, const PreparedStatement& prepared,
    algebra::BranchExecutor* branch_executor);

/// Executes an OQL statement (Prepare + ExecutePrepared). Select
/// queries return a set (of values, or of head tuples); bare
/// expressions return their value.
Result<om::Value> ExecuteOql(const calculus::EvalContext& ctx,
                             const om::Schema& schema,
                             std::string_view statement,
                             const OqlOptions& options = {});

}  // namespace sgmlqdb::oql

#endif  // SGMLQDB_OQL_OQL_H_
