// OQL -> calculus translation (the paper's §5.2 closing remark: every
// extended-O2SQL query of the form `Doc PATH_p[i].ATT_a(x)...`
// translates to a calculus expression `{[P,I,A,X,...] | <Doc
// P[I].A(X)...>}`).
//
// Translation performs the paper's light static typing (§4.2/§5.3):
// variable types are inferred from their range; attribute access on a
// class implicitly dereferences; access on a marked union goes
// through *implicit selectors* — and is a static TypeError when no
// alternative supplies the attribute.

#ifndef SGMLQDB_OQL_TRANSLATE_H_
#define SGMLQDB_OQL_TRANSLATE_H_

#include <memory>

#include "base/status.h"
#include "calculus/formula.h"
#include "om/schema.h"
#include "oql/ast.h"
#include "rank/scoring.h"

namespace sgmlqdb::oql {

struct Translated {
  /// True when the statement is a select-from-where (a calculus
  /// query); false for a bare expression (a closed data term) or a
  /// rank statement.
  bool is_query = false;
  calculus::Query query;
  calculus::DataTermPtr term;
  /// Post-processing the statement needs after engine execution:
  ///  * rank statements (is_query == false, term == null) — the whole
  ///    execution is the rank::TopKScoreRows probe;
  ///  * group-by aggregates / order-by — `query` computes the binding
  ///    rows (keys in __g*/__o0, argument in __a0, value in __r), the
  ///    post spec folds them.
  /// Null for plain statements.
  std::shared_ptr<const rank::PostSpec> post;
};

Result<Translated> Translate(const om::Schema& schema,
                             const Statement& statement);

}  // namespace sgmlqdb::oql

#endif  // SGMLQDB_OQL_TRANSLATE_H_
