// Abstract syntax of the extended O2SQL fragment (paper §4):
//
//   select E
//   from   v1 in C1, ..., base PATH_p.title(t), my_doc .. title(u)
//   where  W
//
// plus standalone expressions (Q4's `my_article PATH_p - my_old_article
// PATH_p`). Identifiers prefixed PATH_ are path variables, ATT_ are
// attribute variables (§4.3).

#ifndef SGMLQDB_OQL_AST_H_
#define SGMLQDB_OQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "om/value.h"

namespace sgmlqdb::oql {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One step of a from-clause path pattern after the path variable:
/// `.title`, `.ATT_a`, `[0]`, `[i]`, with an optional `(v)` capture.
struct PatternStep {
  enum class Kind { kAttr, kAttrVar, kIndexConst, kIndexVar };
  Kind kind;
  std::string name;       // attr name / ATT_ var / index var
  int64_t index = 0;      // kIndexConst
  std::string capture;    // bound variable from "(v)", or empty
};

/// `base PATH_p.title(t)` or `base .. title(t)`.
struct PathPattern {
  /// Path variable name ("PATH_p"), or empty for the `..` sugar
  /// (an anonymous, existentially quantified variable).
  std::string path_var;
  std::vector<PatternStep> steps;
  /// Capture directly on the path variable: `base PATH_p(x).title`.
  std::string var_capture;
};

struct SelectQuery;

struct Expr {
  enum class Kind {
    kIdent,      // variable or persistence root
    kLiteral,    // string/int/float/bool/nil constant
    kTupleCons,  // tuple(a: e, ...)
    kListCons,   // list(e, ...)
    kSetCons,    // set(e, ...)
    kCall,       // f(e, ...)
    kAttr,       // e.name  (implicit deref + implicit selectors)
    kIndex,      // e[i]    (constant index)
    kBinary,     // e OP e
    kNot,        // not e
    kContains,   // e contains <pattern>
    kPathSet,    // e PATH_p... — the set of paths/bindings as a value
    kSelect,     // nested select (allowed as an expression)
  };
  enum class BinOp {
    kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kMinus,
  };

  Kind kind = Kind::kLiteral;
  std::string ident;                       // kIdent / kAttr name / kCall fn
  om::Value literal;                       // kLiteral
  std::vector<std::pair<std::string, ExprPtr>> fields;  // kTupleCons
  std::vector<ExprPtr> args;               // kCall/kListCons/kSetCons,
                                           // kBinary (2), kNot/kAttr/kIndex
                                           // (child at 0), kContains (0)
  int64_t index = 0;                       // kIndex
  BinOp op = BinOp::kEq;                   // kBinary
  std::string pattern;                     // kContains: raw pattern text
  PathPattern path;                        // kPathSet
  std::shared_ptr<const SelectQuery> select;  // kSelect
};

struct FromBinding {
  enum class Kind { kIn, kPath };
  Kind kind;
  std::string var;       // kIn: the bound variable
  ExprPtr expr;          // kIn: the collection; kPath: the base
  PathPattern path;      // kPath
};

struct SelectQuery {
  ExprPtr select;
  std::vector<FromBinding> from;
  ExprPtr where;  // may be null
  /// `group by k1, ..., kn` — activates aggregate interpretation of
  /// the select expression (count/sum/min/max/avg). Empty otherwise.
  std::vector<ExprPtr> group_by;
  /// `order by k [asc|desc]` — may be null; exclusive with group_by.
  ExprPtr order_by;
  bool order_desc = false;
};

/// `rank(Root by <pattern>) [limit k]`: BM25-ranked retrieval of the
/// root's member documents.
struct RankStatement {
  std::string root;      // persistence root (e.g. Articles)
  std::string pattern;   // raw contains-pattern text
  uint64_t limit = 0;    // 0 == unlimited (score-all)
};

/// A parsed OQL statement: a select-from-where, a bare expression, or
/// a rank statement.
struct Statement {
  std::shared_ptr<const SelectQuery> select;  // one of these is set
  ExprPtr expr;
  std::shared_ptr<const RankStatement> rank;
};

}  // namespace sgmlqdb::oql

#endif  // SGMLQDB_OQL_AST_H_
