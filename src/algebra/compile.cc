#include "algebra/compile.h"

#include <set>

#include "algebra/static_types.h"
#include "path/schema_paths.h"

namespace sgmlqdb::algebra {

using calculus::AttrTerm;
using calculus::DataTerm;
using calculus::DataTermPtr;
using calculus::Formula;
using calculus::FormulaPtr;
using calculus::PathComponent;
using calculus::PathTerm;
using calculus::Query;
using calculus::Sort;
using calculus::Variable;
using om::Schema;
using om::Type;
using om::TypeKind;
using om::Value;
using path::SchemaPath;
using path::SchemaStep;

namespace {

/// One alternative under construction: a plan plus the static types of
/// its columns.
struct Branch {
  PlanPtr plan;
  std::map<std::string, Type> types;
};

class Compiler {
 public:
  explicit Compiler(const Schema& schema) : schema_(schema) {}

  Result<CompiledQuery> Compile(const Query& query) {
    // Record head sorts.
    for (const Variable& v : query.head) sorts_[v.name] = v.sort;

    // Strip quantifiers, flatten conjunctions.
    std::vector<FormulaPtr> conjuncts;
    SGMLQDB_RETURN_IF_ERROR(Flatten(query.body, &conjuncts));

    // A path variable's concrete path is materialized (a per-row,
    // per-step cost) only when something actually consumes it: the
    // head, or any second conjunct mentioning it.
    {
      std::map<std::string, size_t> uses;
      for (const Variable& v : query.head) {
        if (v.sort == Sort::kPath) uses[v.name] += 2;  // always track
      }
      for (const FormulaPtr& c : conjuncts) {
        for (const Variable& v : c->FreeVariables()) {
          if (v.sort == Sort::kPath) uses[v.name] += 1;
        }
      }
      for (const auto& [name, count] : uses) {
        if (count > 1) tracked_path_vars_.insert(name);
      }
    }

    // Seed: one empty branch.
    std::vector<Branch> branches;
    branches.push_back(Branch{Unit(), {}});

    // Greedy ordering identical to the naive evaluator's.
    std::set<Variable> bound;
    std::vector<FormulaPtr> pending = conjuncts;
    while (!pending.empty()) {
      bool progressed = false;
      for (size_t i = 0; i < pending.size(); ++i) {
        const FormulaPtr& f = pending[i];
        if (!Ready(*f, bound)) continue;
        SGMLQDB_ASSIGN_OR_RETURN(
            branches, CompileConjunct(*f, bound, std::move(branches)));
        std::set<Variable> fv = f->FreeVariables();
        bound.insert(fv.begin(), fv.end());
        pending.erase(pending.begin() + static_cast<long>(i));
        progressed = true;
        break;
      }
      if (!progressed) {
        return Status::TypeError(
            "query is not range-restricted (algebra compiler stuck)");
      }
    }

    // Head projection per branch, then union + distinct.
    std::vector<std::string> head_cols;
    for (const Variable& v : query.head) head_cols.push_back(v.name);
    std::vector<PlanPtr> projected;
    projected.reserve(branches.size());
    CompiledQuery out;
    for (Branch& b : branches) {
      projected.push_back(Project(b.plan, head_cols));
      out.branch_types.push_back(std::move(b.types));
    }
    out.branch_count = branches.size();
    out.plan = Distinct(UnionAll(std::move(projected)));
    out.head = query.head;
    out.sorts = sorts_;
    return out;
  }

 private:
  Status Flatten(const FormulaPtr& f, std::vector<FormulaPtr>* out) {
    switch (f->kind()) {
      case Formula::Kind::kExists:
        for (const Variable& v : f->variables()) sorts_[v.name] = v.sort;
        return Flatten(f->children()[0], out);
      case Formula::Kind::kAnd:
        for (const FormulaPtr& c : f->children()) {
          SGMLQDB_RETURN_IF_ERROR(Flatten(c, out));
        }
        return Status::OK();
      default:
        // Also register variable sorts appearing free in atoms.
        for (const Variable& v : f->FreeVariables()) {
          sorts_.emplace(v.name, v.sort);
        }
        out->push_back(f);
        return Status::OK();
    }
  }

  /// Mirrors the naive evaluator's readiness test.
  bool Ready(const Formula& f, const std::set<Variable>& bound) {
    std::set<Variable> free = f.FreeVariables();
    bool all_bound = true;
    for (const Variable& v : free) {
      if (bound.count(v) == 0) all_bound = false;
    }
    if (all_bound) return true;
    switch (f.kind()) {
      case Formula::Kind::kPathPred: {
        std::set<Variable> base;
        calculus::CollectVariables(*f.terms()[0], &base);
        for (const Variable& v : base) {
          if (bound.count(v) == 0) return false;
        }
        return true;
      }
      case Formula::Kind::kIn: {
        std::set<Variable> coll;
        calculus::CollectVariables(*f.terms()[1], &coll);
        for (const Variable& v : coll) {
          if (bound.count(v) == 0) return false;
        }
        return f.terms()[0]->kind() == DataTerm::Kind::kVariable;
      }
      case Formula::Kind::kEq: {
        std::set<Variable> l, r;
        calculus::CollectVariables(*f.terms()[0], &l);
        calculus::CollectVariables(*f.terms()[1], &r);
        auto closed = [&bound](const std::set<Variable>& vs) {
          for (const Variable& v : vs) {
            if (bound.count(v) == 0) return false;
          }
          return true;
        };
        return (closed(l) &&
                f.terms()[1]->kind() == DataTerm::Kind::kVariable) ||
               (closed(r) &&
                f.terms()[0]->kind() == DataTerm::Kind::kVariable);
      }
      default:
        return false;
    }
  }

  Result<std::vector<Branch>> CompileConjunct(const Formula& f,
                                              const std::set<Variable>& bound,
                                              std::vector<Branch> branches) {
    // Fully bound atoms are filters regardless of their kind.
    bool all_bound = true;
    for (const Variable& v : f.FreeVariables()) {
      if (bound.count(v) == 0) all_bound = false;
    }
    if (all_bound && f.kind() != Formula::Kind::kPathPred) {
      auto self = std::make_shared<Formula>(f);
      for (Branch& b : branches) {
        b.plan = Filter(b.plan, self, sorts_);
      }
      return branches;
    }
    switch (f.kind()) {
      case Formula::Kind::kPathPred:
        return CompilePathPred(f, std::move(branches));
      case Formula::Kind::kIn:
        return CompileMembership(f, std::move(branches));
      case Formula::Kind::kEq:
        return CompileEquality(f, bound, std::move(branches));
      default: {
        // Pure filter: all variables already bound.
        auto self = std::make_shared<Formula>(f);
        for (Branch& b : branches) {
          b.plan = Filter(b.plan, self, sorts_);
        }
        return branches;
      }
    }
  }

  Result<std::vector<Branch>> CompileMembership(const Formula& f,
                                                std::vector<Branch> branches) {
    const std::string& var = f.terms()[0]->var_name();
    // Collection must be a root or bound variable term; evaluate per
    // row via Compute into a temp, then unnest.
    std::string coll_col = NewTmp();
    std::vector<Branch> out;
    for (Branch& b : branches) {
      PlanPtr p = Compute(b.plan, coll_col, f.terms()[1], sorts_);
      // Static typing: best effort from root names.
      Type coll_type = StaticTypeOfTerm(*f.terms()[1], b);
      Type elem = Type::Any();
      bool is_set = coll_type.kind() == TypeKind::kSet;
      if (coll_type.kind() == TypeKind::kList ||
          coll_type.kind() == TypeKind::kSet) {
        elem = coll_type.element_type();
      }
      p = is_set ? UnnestSet(p, coll_col, var)
                 : UnnestList(p, coll_col, var);
      Branch nb;
      nb.plan = std::move(p);
      nb.types = b.types;
      nb.types[var] = elem;
      out.push_back(std::move(nb));
    }
    sorts_[var] = Sort::kData;
    return out;
  }

  Result<std::vector<Branch>> CompileEquality(const Formula& f,
                                              const std::set<Variable>& bound,
                                              std::vector<Branch> branches) {
    // The generator side is the one whose variables are all bound; the
    // other side must be an (unbound) variable to bind.
    const DataTermPtr& a = f.terms()[0];
    const DataTermPtr& b = f.terms()[1];
    auto closed_under_bound = [&bound](const DataTerm& t) {
      std::set<Variable> vs;
      calculus::CollectVariables(t, &vs);
      for (const Variable& v : vs) {
        if (bound.count(v) == 0) return false;
      }
      return true;
    };
    DataTermPtr closed_term;
    std::string var;
    if (closed_under_bound(*a) && b->kind() == DataTerm::Kind::kVariable) {
      closed_term = a;
      var = b->var_name();
    } else if (closed_under_bound(*b) &&
               a->kind() == DataTerm::Kind::kVariable) {
      closed_term = b;
      var = a->var_name();
    } else {
      return Status::Unsupported("equality with no bindable variable side");
    }
    std::string tmp = NewTmp();
    for (Branch& br : branches) {
      br.plan = Compute(br.plan, tmp, closed_term, sorts_);
      br.plan = BindOrCheck(br.plan, tmp, var);
      br.types[var] = Type::Any();
    }
    sorts_.emplace(var, Sort::kData);
    return branches;
  }

  /// Compiles <base P...> over every branch.
  Result<std::vector<Branch>> CompilePathPred(const Formula& f,
                                              std::vector<Branch> branches) {
    const DataTerm& base = *f.terms()[0];
    std::vector<Branch> started;
    std::string start_col;
    Type start_type = Type::Any();
    if (base.kind() == DataTerm::Kind::kName) {
      const om::NameDef* def = schema_.FindName(base.root_name());
      if (def == nullptr) {
        return Status::NotFound("unknown persistence root '" +
                                base.root_name() + "'");
      }
      start_col = NewTmp();
      start_type = def->type;
      for (Branch& b : branches) {
        Branch nb;
        nb.plan = RootScan(base.root_name(), start_col);
        if (b.plan != nullptr) {
          nb.plan = CrossProduct(b.plan, nb.plan);
        }
        nb.types = b.types;
        nb.types[start_col] = start_type;
        started.push_back(std::move(nb));
      }
    } else if (base.kind() == DataTerm::Kind::kVariable) {
      start_col = base.var_name();
      for (Branch& b : branches) {
        auto it = b.types.find(start_col);
        Branch nb = std::move(b);
        // Type recorded when the variable was bound (Any if unknown).
        (void)it;
        started.push_back(std::move(nb));
      }
    } else {
      return Status::Unsupported(
          "path predicate base must be a root or a variable");
    }

    // Walk components across all branches, tracking per-branch
    // cursor column and static type.
    std::vector<Branch> current = std::move(started);
    struct Cur {
      Branch branch;
      std::string col;
      Type type;
      // True once `col` is a compiler-owned scratch column that later
      // steps may overwrite in place (column pruning: avoids one map
      // entry per navigation step).
      bool col_is_scratch = false;
    };
    std::vector<Cur> curs;
    for (Branch& b : current) {
      Cur c;
      c.col = start_col;
      auto it = b.types.find(start_col);
      c.type = it != b.types.end() ? it->second : Type::Any();
      c.branch = std::move(b);
      curs.push_back(std::move(c));
    }
    for (const PathComponent& comp : f.path().components()) {
      std::vector<Cur> next;
      for (Cur& c : curs) {
        SGMLQDB_RETURN_IF_ERROR(ApplyComponent(comp, std::move(c), &next));
      }
      curs = std::move(next);
      if (curs.empty()) break;  // statically empty result
    }
    std::vector<Branch> out;
    for (Cur& c : curs) out.push_back(std::move(c.branch));
    if (out.empty()) {
      // All branches died statically: an empty UnionAll branch set
      // would lose column info; keep an empty plan.
      Branch dead;
      dead.plan = UnionAll({});
      out.push_back(std::move(dead));
    }
    return out;
  }

  /// Applies one component to one cursor, appending result cursors.
  template <typename CurT>
  Status ApplyComponent(const PathComponent& comp, CurT cur,
                        std::vector<CurT>* out) {
    switch (comp.kind) {
      case PathComponent::Kind::kDeref:
        return ApplyDeref(std::move(cur), "", out);
      case PathComponent::Kind::kAttrSel: {
        if (!comp.attr.is_variable) {
          return ApplyAttr(std::move(cur), comp.attr.name, "", out);
        }
        sorts_.emplace(comp.attr.name, Sort::kAttr);
        // Expand: one branch per available attribute.
        if (cur.type.kind() != TypeKind::kTuple &&
            cur.type.kind() != TypeKind::kUnion) {
          return Status::OK();  // dead branch
        }
        for (size_t i = 0; i < cur.type.size(); ++i) {
          CurT c2 = cur;
          std::string attr = c2.type.FieldName(i);
          std::string tmp = NextCursorCol(c2);
          c2.branch.plan = AttrStep(c2.branch.plan, c2.col, attr, tmp, "");
          // Bind the attribute variable column (string) with check.
          c2.branch.plan = BindOrCheckConst(c2.branch.plan, comp.attr.name,
                                            Value::String(attr));
          c2.col = tmp;
          c2.type = cur.type.FieldType(i);
          c2.branch.types[tmp] = c2.type;
          out->push_back(std::move(c2));
        }
        return Status::OK();
      }
      case PathComponent::Kind::kIndexConst: {
        CurT c2 = std::move(cur);
        Type elem = ElementTypeForIndexing(c2.type);
        std::string tmp = NextCursorCol(c2);
        c2.branch.plan = IndexStep(c2.branch.plan, c2.col, comp.index, tmp);
        c2.col = tmp;
        c2.type = elem;
        c2.branch.types[tmp] = elem;
        out->push_back(std::move(c2));
        return Status::OK();
      }
      case PathComponent::Kind::kIndexVar: {
        sorts_.emplace(comp.var, Sort::kData);
        CurT c2 = std::move(cur);
        Type elem = ElementTypeForIndexing(c2.type);
        std::string tmp = NextCursorCol(c2);
        std::string pos = NewTmp();
        c2.branch.plan = UnnestList(c2.branch.plan, c2.col, tmp, pos);
        c2.branch.plan = BindOrCheck(c2.branch.plan, pos, comp.var);
        c2.col = tmp;
        c2.type = elem;
        c2.branch.types[tmp] = elem;
        out->push_back(std::move(c2));
        return Status::OK();
      }
      case PathComponent::Kind::kCapture: {
        sorts_.emplace(comp.var, Sort::kData);
        CurT c2 = std::move(cur);
        c2.branch.plan = BindOrCheck(c2.branch.plan, c2.col, comp.var);
        c2.branch.types[comp.var] = c2.type;
        out->push_back(std::move(c2));
        return Status::OK();
      }
      case PathComponent::Kind::kSetCapture: {
        sorts_.emplace(comp.var, Sort::kData);
        if (cur.type.kind() != TypeKind::kSet &&
            cur.type.kind() != TypeKind::kAny) {
          return Status::OK();  // dead
        }
        CurT c2 = std::move(cur);
        std::string tmp = NextCursorCol(c2);
        c2.branch.plan = UnnestSet(c2.branch.plan, c2.col, tmp);
        c2.branch.plan = BindOrCheck(c2.branch.plan, tmp, comp.var);
        c2.col = tmp;
        c2.type = c2.type.kind() == TypeKind::kSet ? c2.type.element_type()
                                                   : Type::Any();
        c2.branch.types[c2.col] = c2.type;
        out->push_back(std::move(c2));
        return Status::OK();
      }
      case PathComponent::Kind::kVar: {
        sorts_.emplace(comp.var, Sort::kPath);
        // Schema-guided expansion: one branch per schema path from the
        // cursor's static type (§5.4). A bound path variable instead
        // navigates along the stored path.
        if (bound_path_vars_.count(comp.var) > 0) {
          CurT c2 = std::move(cur);
          std::string tmp = NextCursorCol(c2);
          c2.branch.plan =
              Compute(c2.branch.plan, tmp,
                      DataTerm::PathApply(DataTerm::Var(c2.col),
                                          PathTerm::Var(comp.var)),
                      sorts_);
          // NOTE: PathApply over a data variable requires c2.col to be
          // a data column; internal columns are data-sorted by
          // default.
          c2.col = tmp;
          c2.type = Type::Any();
          c2.branch.types[tmp] = c2.type;
          out->push_back(std::move(c2));
          return Status::OK();
        }
        bound_path_vars_.insert(comp.var);
        const bool tracked = tracked_path_vars_.count(comp.var) > 0;
        const std::string path_col = tracked ? comp.var : std::string();
        std::vector<SchemaPath> candidates = path::EnumerateSchemaPaths(
            schema_, cur.type, path::SchemaPathOptions{});
        for (const SchemaPath& sp : candidates) {
          CurT c2 = cur;
          if (tracked) {
            c2.branch.plan = EmptyPathCol(c2.branch.plan, comp.var);
          }
          bool dead = false;
          for (const SchemaStep& step : sp.steps) {
            switch (step.kind()) {
              case SchemaStep::Kind::kAttr: {
                std::string tmp = NextCursorCol(c2);
                c2.branch.plan = AttrStep(c2.branch.plan, c2.col,
                                          step.name(), tmp, path_col);
                c2.col = tmp;
                break;
              }
              case SchemaStep::Kind::kIndexAny: {
                std::string tmp = NextCursorCol(c2);
                c2.branch.plan =
                    UnnestList(c2.branch.plan, c2.col, tmp, "", path_col);
                c2.col = tmp;
                break;
              }
              case SchemaStep::Kind::kSetAny: {
                std::string tmp = NextCursorCol(c2);
                c2.branch.plan =
                    UnnestSet(c2.branch.plan, c2.col, tmp, path_col);
                c2.col = tmp;
                break;
              }
              case SchemaStep::Kind::kDeref: {
                std::string tmp = NextCursorCol(c2);
                c2.branch.plan =
                    ClassFilter(c2.branch.plan, c2.col, step.name());
                c2.branch.plan =
                    DerefStep(c2.branch.plan, c2.col, tmp, path_col);
                c2.col = tmp;
                break;
              }
            }
          }
          if (dead) continue;
          c2.type = sp.result_type;
          c2.branch.types[c2.col] = c2.type;
          out->push_back(std::move(c2));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unhandled path component in compiler");
  }

  template <typename CurT>
  Status ApplyDeref(CurT cur, const std::string& path_col,
                    std::vector<CurT>* out) {
    std::vector<std::string> classes;
    if (cur.type.kind() == TypeKind::kClass) {
      classes = schema_.SubclassesOf(cur.type.class_name());
    } else if (cur.type.kind() == TypeKind::kAny) {
      for (const om::ClassDef& c : schema_.classes()) {
        classes.push_back(c.name);
      }
    } else {
      return Status::OK();  // dead branch
    }
    // Deduplicate identical effective types.
    std::vector<Type> seen;
    for (const std::string& cls : classes) {
      Result<Type> effective = schema_.EffectiveType(cls);
      if (!effective.ok()) continue;
      bool dup = false;
      for (const Type& t : seen) {
        if (Type::Equals(t, effective.value())) dup = true;
      }
      if (dup) continue;
      seen.push_back(effective.value());
      CurT c2 = cur;
      std::string tmp = NextCursorCol(c2);
      c2.branch.plan = ClassFilter(c2.branch.plan, c2.col, cls);
      c2.branch.plan = DerefStep(c2.branch.plan, c2.col, tmp, path_col);
      c2.col = tmp;
      c2.type = effective.value();
      c2.branch.types[tmp] = c2.type;
      out->push_back(std::move(c2));
    }
    return Status::OK();
  }

  template <typename CurT>
  Status ApplyAttr(CurT cur, const std::string& attr,
                   const std::string& path_col, std::vector<CurT>* out) {
    if (cur.type.kind() == TypeKind::kTuple ||
        cur.type.kind() == TypeKind::kUnion) {
      std::optional<Type> ft = cur.type.FindField(attr);
      if (!ft.has_value()) return Status::OK();  // dead
      CurT c2 = std::move(cur);
      std::string tmp = NextCursorCol(c2);
      c2.branch.plan = AttrStep(c2.branch.plan, c2.col, attr, tmp, path_col);
      c2.col = tmp;
      c2.type = *ft;
      c2.branch.types[tmp] = c2.type;
      out->push_back(std::move(c2));
      return Status::OK();
    }
    if (cur.type.kind() == TypeKind::kAny) {
      // Unknown static type: attempt the step dynamically.
      CurT c2 = std::move(cur);
      std::string tmp = NextCursorCol(c2);
      c2.branch.plan = AttrStep(c2.branch.plan, c2.col, attr, tmp, path_col);
      c2.col = tmp;
      c2.type = Type::Any();
      c2.branch.types[tmp] = c2.type;
      out->push_back(std::move(c2));
      return Status::OK();
    }
    return Status::OK();  // dead branch
  }

  /// Element type when indexing: lists index normally; tuples index
  /// their heterogeneous-list view (element type = the marked union of
  /// the fields, §5.1).
  static Type ElementTypeForIndexing(const Type& t) {
    if (t.kind() == TypeKind::kList) return t.element_type();
    if (t.kind() == TypeKind::kTuple) {
      std::vector<std::pair<std::string, Type>> alts;
      for (size_t i = 0; i < t.size(); ++i) {
        alts.emplace_back(t.FieldName(i), t.FieldType(i));
      }
      return Type::Union(std::move(alts));
    }
    return Type::Any();
  }

  /// BindOrCheck against a constant: materialize the constant in a
  /// temp column first.
  PlanPtr BindOrCheckConst(PlanPtr plan, const std::string& var,
                           Value constant) {
    std::string tmp = NewTmp();
    plan = ConstCol(std::move(plan), tmp, std::move(constant));
    return BindOrCheck(std::move(plan), tmp, var);
  }

  Type StaticTypeOfTerm(const DataTerm& term, const Branch& b) {
    StaticTerm st = AnalyzeTerm(term, b.types, schema_);
    if (!st.never && st.type.has_value()) return *st.type;
    return Type::Any();
  }

  std::string NewTmp() { return "__c" + std::to_string(next_tmp_++); }

  /// Output column for the next navigation step: reuses the cursor's
  /// scratch column when possible (user-variable columns are never
  /// overwritten).
  template <typename CurT>
  std::string NextCursorCol(CurT& c) {
    if (c.col_is_scratch) return c.col;
    c.col_is_scratch = true;
    return NewTmp();
  }

  const Schema& schema_;
  std::map<std::string, Sort> sorts_;
  std::set<std::string> bound_path_vars_;
  std::set<std::string> tracked_path_vars_;
  size_t next_tmp_ = 0;
};

}  // namespace

Result<CompiledQuery> CompileQuery(const Schema& schema, const Query& query) {
  return Compiler(schema).Compile(query);
}

Result<om::Value> ExecuteCompiled(const calculus::EvalContext& ctx,
                                  const CompiledQuery& compiled,
                                  BranchExecutor* branch_executor) {
  ExecContext ec;
  ec.calculus = &ctx;
  ec.branch_executor = branch_executor;
  std::vector<Row> rows;
  SGMLQDB_RETURN_IF_ERROR(compiled.plan->Execute(ec, &rows));
  std::vector<Value> elems;
  for (const Row& row : rows) {
    if (compiled.head.size() == 1) {
      auto it = row.find(compiled.head[0].name);
      if (it == row.end()) continue;  // branch missing a head column
      elems.push_back(it->second);
      continue;
    }
    std::vector<std::pair<std::string, Value>> fields;
    bool complete = true;
    for (const Variable& v : compiled.head) {
      auto it = row.find(v.name);
      if (it == row.end()) {
        complete = false;
        break;
      }
      fields.emplace_back(v.name, it->second);
    }
    if (complete) elems.push_back(Value::Tuple(std::move(fields)));
  }
  return Value::Set(std::move(elems));
}

Result<om::Value> EvaluateAlgebraic(const calculus::EvalContext& ctx,
                                    const Schema& schema,
                                    const Query& query) {
  SGMLQDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                           CompileQuery(schema, query));
  return ExecuteCompiled(ctx, compiled);
}

}  // namespace sgmlqdb::algebra
