#include "algebra/static_types.h"

#include <utility>

namespace sgmlqdb::algebra {

using calculus::DataTerm;
using om::Type;
using om::TypeKind;
using om::ValueKind;

std::optional<Type> ResolveClass(const Type& t, const om::Schema& schema) {
  if (t.kind() != TypeKind::kClass) return t;
  Result<Type> eff = schema.EffectiveType(t.class_name());
  if (!eff.ok()) return std::nullopt;
  return std::move(eff).value();
}

StaticTerm StaticAttrStep(const Type& in, const std::string& attr,
                          const om::Schema& schema) {
  std::optional<Type> resolved = ResolveClass(in, schema);
  if (!resolved.has_value()) return StaticTerm::Unknown();
  const Type& t = *resolved;
  switch (t.kind()) {
    case TypeKind::kAny:
      return StaticTerm::Unknown();
    case TypeKind::kTuple: {
      std::optional<Type> f = t.FindField(attr);
      if (f.has_value()) return StaticTerm::Of(std::move(*f));
      if (t.size() == 1) {
        // The value is a 1-field tuple, so the runtime implicit
        // selector applies: deref the inner value and look there.
        std::optional<Type> inner = ResolveClass(t.FieldType(0), schema);
        if (!inner.has_value() || inner->kind() == TypeKind::kAny) {
          return StaticTerm::Unknown();
        }
        if (inner->is_tuple()) {
          std::optional<Type> f2 = inner->FindField(attr);
          if (f2.has_value()) return StaticTerm::Of(std::move(*f2));
        }
        return StaticTerm::Never();
      }
      return StaticTerm::Never();
    }
    case TypeKind::kUnion: {
      // Runtime values are marked-union tuples [ai: vi]. The step
      // succeeds for rows whose marker is `attr`, or whose inner
      // value reaches `attr` through the implicit selector.
      bool feasible = false;
      bool agree = true;
      std::optional<Type> single;
      for (size_t i = 0; i < t.size(); ++i) {
        std::optional<Type> hit;
        if (t.FieldName(i) == attr) {
          hit = t.FieldType(i);
        } else {
          StaticTerm through =
              StaticAttrStep(Type::Tuple({{t.FieldName(i), t.FieldType(i)}}),
                             attr, schema);
          if (through.never) continue;
          if (!through.type.has_value()) {
            feasible = true;
            agree = false;
            continue;
          }
          hit = through.type;
        }
        feasible = true;
        if (!single.has_value()) {
          single = std::move(hit);
        } else if (!(*single == *hit)) {
          agree = false;
        }
      }
      if (!feasible) return StaticTerm::Never();
      // All feasible alternatives yield the same type — that IS the
      // step's type, however many alternatives there are.
      if (agree && single.has_value()) {
        return StaticTerm::Of(std::move(*single));
      }
      return StaticTerm::Unknown();
    }
    default:
      // Atomic / list / set values: SelectAttr type-errors (soft) on
      // every row.
      return StaticTerm::Never();
  }
}

StaticTerm AnalyzeTerm(const DataTerm& term,
                       const std::map<std::string, Type>& types,
                       const om::Schema& schema) {
  switch (term.kind()) {
    case DataTerm::Kind::kVariable: {
      auto it = types.find(term.var_name());
      if (it == types.end()) return StaticTerm::Unknown();
      return StaticTerm::Of(it->second);
    }
    case DataTerm::Kind::kName: {
      const om::NameDef* def = schema.FindName(term.root_name());
      if (def == nullptr) return StaticTerm::Unknown();
      return StaticTerm::Of(def->type);
    }
    case DataTerm::Kind::kConstant:
      switch (term.constant().kind()) {
        case ValueKind::kString:
          return StaticTerm::Of(Type::String());
        case ValueKind::kInteger:
          return StaticTerm::Of(Type::Integer());
        case ValueKind::kFloat:
          return StaticTerm::Of(Type::Float());
        case ValueKind::kBoolean:
          return StaticTerm::Of(Type::Boolean());
        default:
          return StaticTerm::Unknown();
      }
    case DataTerm::Kind::kFunction: {
      const std::string& fn = term.function_name();
      if (fn == "__select_attr" && term.children().size() == 2 &&
          term.children()[1]->kind() == DataTerm::Kind::kConstant &&
          term.children()[1]->constant().kind() == ValueKind::kString) {
        StaticTerm base = AnalyzeTerm(*term.children()[0], types, schema);
        if (base.never) return StaticTerm::Never();
        if (!base.type.has_value()) return StaticTerm::Unknown();
        return StaticAttrStep(*base.type,
                              term.children()[1]->constant().AsString(),
                              schema);
      }
      if (fn == "text" && term.children().size() == 1) {
        StaticTerm base = AnalyzeTerm(*term.children()[0], types, schema);
        if (base.never) return StaticTerm::Never();
        if (base.type.has_value() && base.type->is_atomic() &&
            base.type->kind() != TypeKind::kString) {
          return StaticTerm::Never();  // text(number) type-errors per row
        }
        return StaticTerm::Of(Type::String());
      }
      return StaticTerm::Unknown();
    }
    default:
      return StaticTerm::Unknown();
  }
}

}  // namespace sgmlqdb::algebra
