#include "algebra/optimize.h"

#include <optional>
#include <utility>
#include <vector>

#include "algebra/static_types.h"
#include "base/fault_injection.h"
#include "calculus/formula.h"
#include "calculus/terms.h"
#include "om/type.h"
#include "text/pattern.h"

namespace sgmlqdb::algebra {

namespace {

using calculus::DataTerm;
using calculus::Formula;
using om::Type;
using om::TypeKind;
using om::ValueKind;

// ---------------------------------------------------------------------
// Static analysis of text-predicate arguments against a branch's
// schema-derived column types (shared machinery in static_types.h).

/// True when a contains/near atom over `term` can never hold: the
/// term always soft-fails, or its value never carries text (numeric /
/// boolean atomics — TextOf type-errors, making the atom false).
bool TextAtomInfeasible(const DataTerm& term,
                        const std::map<std::string, Type>& types,
                        const om::Schema& schema) {
  StaticTerm st = AnalyzeTerm(term, types, schema);
  if (st.never) return true;
  return st.type.has_value() && st.type->is_atomic() &&
         st.type->kind() != TypeKind::kString;
}

/// True when `term` statically resolves to a class-typed value, so
/// every row's value is an object and the index candidate set alone
/// can short-circuit the branch.
bool TermIsObjectTyped(const DataTerm& term,
                       const std::map<std::string, Type>& types,
                       const om::Schema& schema) {
  StaticTerm st = AnalyzeTerm(term, types, schema);
  return !st.never && st.type.has_value() &&
         st.type->kind() == TypeKind::kClass;
}

// ---------------------------------------------------------------------
// Branch pruning.

/// The compiler's dead-alternative placeholder: Project over an empty
/// union.
bool IsDeadPlaceholder(const PlanPtr& branch) {
  return branch->kind() == NodeKind::kProject &&
         branch->children().size() == 1 &&
         branch->children()[0]->kind() == NodeKind::kUnionAll &&
         branch->children()[0]->children().empty();
}

/// Scans the branch for filters whose text atom is statically
/// infeasible under this branch's column types.
bool HasInfeasibleTextFilter(const PlanPtr& node,
                             const std::map<std::string, Type>& types,
                             const om::Schema& schema) {
  if (node->kind() == NodeKind::kFilter) {
    const Formula* f = node->filter_formula();
    if (f != nullptr && f->kind() == Formula::Kind::kInterpreted &&
        (f->predicate() == "contains" || f->predicate() == "near") &&
        !f->terms().empty() &&
        TextAtomInfeasible(*f->terms()[0], types, schema)) {
      return true;
    }
  }
  for (const PlanPtr& c : node->children()) {
    if (HasInfeasibleTextFilter(c, types, schema)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Text-index pushdown.

/// Converts one Filter into an index join when its formula is a
/// contains/near atom with constant arguments; null when not
/// applicable.
PlanPtr ConvertTextFilter(const Node& filter,
                          const std::map<std::string, Type>& types,
                          const om::Schema& schema, PlanPtr input) {
  const Formula* f = filter.filter_formula();
  const std::map<std::string, calculus::Sort>* sorts = filter.filter_sorts();
  if (f == nullptr || sorts == nullptr ||
      f->kind() != Formula::Kind::kInterpreted) {
    return nullptr;
  }
  if (f->predicate() == "contains") {
    if (f->terms().size() != 2 ||
        f->terms()[1]->kind() != DataTerm::Kind::kConstant ||
        f->terms()[1]->constant().kind() != ValueKind::kString) {
      return nullptr;
    }
    const std::string& pattern_text = f->terms()[1]->constant().AsString();
    Result<text::Pattern> pattern = text::Pattern::Parse(pattern_text);
    if (!pattern.ok()) return nullptr;  // keep runtime error behaviour
    bool object_only = TermIsObjectTyped(*f->terms()[0], types, schema);
    return IndexSemiJoin(std::move(input), f->terms()[0], pattern_text,
                         std::move(pattern).value(), *sorts, object_only);
  }
  if (f->predicate() == "near") {
    if (f->terms().size() != 4 ||
        f->terms()[1]->kind() != DataTerm::Kind::kConstant ||
        f->terms()[1]->constant().kind() != ValueKind::kString ||
        f->terms()[2]->kind() != DataTerm::Kind::kConstant ||
        f->terms()[2]->constant().kind() != ValueKind::kString ||
        f->terms()[3]->kind() != DataTerm::Kind::kConstant ||
        f->terms()[3]->constant().kind() != ValueKind::kInteger ||
        f->terms()[3]->constant().AsInteger() < 0) {
      return nullptr;
    }
    bool object_only = TermIsObjectTyped(*f->terms()[0], types, schema);
    return IndexNearJoin(
        std::move(input), f->terms()[0], f->terms()[1]->constant().AsString(),
        f->terms()[2]->constant().AsString(),
        static_cast<size_t>(f->terms()[3]->constant().AsInteger()), *sorts,
        object_only);
  }
  return nullptr;
}

PlanPtr RewriteIndexPushdown(const PlanPtr& node,
                             const std::map<std::string, Type>& types,
                             const om::Schema& schema, OptimizeStats* stats) {
  std::vector<PlanPtr> kids;
  kids.reserve(node->children().size());
  bool changed = false;
  for (const PlanPtr& c : node->children()) {
    PlanPtr r = RewriteIndexPushdown(c, types, schema, stats);
    changed = changed || r != c;
    kids.push_back(std::move(r));
  }
  if (node->kind() == NodeKind::kFilter) {
    PlanPtr converted = ConvertTextFilter(*node, types, schema, kids[0]);
    if (converted != nullptr) {
      ++stats->index_pushdowns;
      return converted;
    }
  }
  if (!changed) return node;
  return node->WithChildren(std::move(kids));
}

// ---------------------------------------------------------------------
// Filter pushdown.

bool IsPredicateNode(NodeKind k) {
  return k == NodeKind::kFilter || k == NodeKind::kIndexSemiJoin ||
         k == NodeKind::kIndexNearJoin;
}

/// Per-row operators a predicate commutes with (unless it reads a
/// column they introduce).
bool IsTransparentNode(NodeKind k) {
  switch (k) {
    case NodeKind::kAttrStep:
    case NodeKind::kDerefStep:
    case NodeKind::kClassFilter:
    case NodeKind::kUnnestList:
    case NodeKind::kIndexStep:
    case NodeKind::kUnnestSet:
    case NodeKind::kConstCol:
    case NodeKind::kBindOrCheck:
    case NodeKind::kCompute:
      return true;
    default:
      return false;
  }
}

struct PendingPredicate {
  PlanPtr pred;
  std::vector<std::string> required;
  size_t steps_passed = 0;
};

bool ReadsAny(const PendingPredicate& p,
              const std::vector<std::string>& introduced) {
  for (const std::string& col : introduced) {
    for (const std::string& req : p.required) {
      if (col == req) return true;
    }
  }
  return false;
}

/// Reattaches `preds` (original top-to-bottom order) above `node`.
PlanPtr Reattach(PlanPtr node, std::vector<PendingPredicate>& preds,
                 OptimizeStats* stats) {
  for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
    if (it->steps_passed > 0) ++stats->filters_pushed;
    node = it->pred->WithChildren({std::move(node)});
  }
  preds.clear();
  return node;
}

PlanPtr SinkPredicates(const PlanPtr& node,
                       std::vector<PendingPredicate> pending,
                       OptimizeStats* stats) {
  NodeKind k = node->kind();
  if (IsPredicateNode(k)) {
    pending.push_back(
        PendingPredicate{node, node->RequiredColumns(), 0});
    return SinkPredicates(node->children()[0], std::move(pending), stats);
  }
  if (IsTransparentNode(k)) {
    std::vector<std::string> introduced = node->IntroducedColumns();
    std::vector<PendingPredicate> stop;
    std::vector<PendingPredicate> below;
    for (PendingPredicate& p : pending) {
      if (ReadsAny(p, introduced)) {
        stop.push_back(std::move(p));
      } else {
        ++p.steps_passed;
        below.push_back(std::move(p));
      }
    }
    PlanPtr child =
        SinkPredicates(node->children()[0], std::move(below), stats);
    PlanPtr rebuilt = child == node->children()[0]
                          ? node
                          : node->WithChildren({std::move(child)});
    return Reattach(std::move(rebuilt), stop, stats);
  }
  // Barrier (leaf, union, product, project, distinct): recurse into
  // children with fresh pending sets, reattach everything here.
  std::vector<PlanPtr> kids;
  kids.reserve(node->children().size());
  bool changed = false;
  for (const PlanPtr& c : node->children()) {
    PlanPtr r = SinkPredicates(c, {}, stats);
    changed = changed || r != c;
    kids.push_back(std::move(r));
  }
  PlanPtr rebuilt =
      changed ? node->WithChildren(std::move(kids)) : node;
  return Reattach(std::move(rebuilt), pending, stats);
}

// ---------------------------------------------------------------------
// Document prefilter.

/// A doc filter to splice directly above chain[introducer].
struct DocFilterSpec {
  size_t introducer;
  std::string doc_col;
  bool contains;
  std::string pattern_text;
  std::string word1, word2;
  size_t max_distance;
  /// The join term's static class ("" when unknown): lets the filter
  /// discard candidate units no term value could be.
  std::string term_class;
};

/// The static class of an index join's term under `types`, or "" when
/// it cannot be pinned to a class. Object-only joins always have
/// class-typed terms, so this usually succeeds.
std::string StaticTermClass(const Node& node,
                            const std::map<std::string, Type>& types,
                            const om::Schema& schema) {
  const DataTerm* term = node.index_term();
  if (term == nullptr) return "";
  StaticTerm st = AnalyzeTerm(*term, types, schema);
  if (st.never || !st.type.has_value() ||
      st.type->kind() != TypeKind::kClass) {
    return "";
  }
  return st.type->class_name();
}

/// True for terms whose value is derived from their variables by
/// intra-document navigation only (attribute selection, text): the
/// shapes through which a document anchor propagates.
bool NavShapedTerm(const DataTerm& t) {
  switch (t.kind()) {
    case DataTerm::Kind::kVariable:
      return true;
    case DataTerm::Kind::kFunction: {
      const std::string& fn = t.function_name();
      if (fn == "__select_attr") {
        return t.children().size() == 2 && NavShapedTerm(*t.children()[0]);
      }
      if (fn == "text") {
        return t.children().size() == 1 && NavShapedTerm(*t.children()[0]);
      }
      return false;
    }
    default:
      return false;
  }
}

/// A persistence-root type anchors its values directly (a document
/// root object) or via unnesting (a collection of root objects).
bool IsRootClass(const Type& t) { return t.kind() == TypeKind::kClass; }
bool IsRootCollection(const Type& t) {
  return (t.kind() == TypeKind::kSet || t.kind() == TypeKind::kList) &&
         t.element_type().kind() == TypeKind::kClass;
}

/// Splices IndexDocFilter nodes into a linear branch: each object-only
/// index join whose term traces back (through navigation steps only)
/// to a document anchor column gets a document-level prefilter right
/// above the anchor's introducer, so documents without candidate
/// units never run the navigation in between.
PlanPtr InsertDocFilters(const om::Schema& schema,
                         const std::map<std::string, Type>& types,
                         PlanPtr branch, OptimizeStats* stats) {
  // Collect the branch's spine, root first. Linear unary chains only,
  // except a CrossProduct with a Unit side (the compiler's seed),
  // which is traversed through its non-trivial child.
  std::vector<PlanPtr> chain;
  std::vector<size_t> descend;  // child index taken from chain[i]
  PlanPtr cur = branch;
  while (true) {
    if (cur->kind() == NodeKind::kIndexDocFilter) return branch;  // done
    chain.push_back(cur);
    const std::vector<PlanPtr>& kids = cur->children();
    if (kids.empty()) break;
    size_t idx = 0;
    if (kids.size() == 1) {
      idx = 0;
    } else if (cur->kind() == NodeKind::kCrossProduct && kids.size() == 2 &&
               (kids[0]->kind() == NodeKind::kUnit ||
                kids[1]->kind() == NodeKind::kUnit)) {
      idx = kids[0]->kind() == NodeKind::kUnit ? 1 : 0;
    } else {
      return branch;  // genuinely branching subplan: leave it alone
    }
    descend.push_back(idx);
    cur = kids[idx];
  }

  // Bottom-up anchor analysis. anchor[col] names the ancestor column
  // whose object pins the document every value of `col` is navigated
  // from; the marker value flags a column holding a collection whose
  // elements each anchor themselves once unnested.
  const std::string kRootCollection = "<collection-of-roots>";
  std::map<std::string, std::string> anchor;
  std::map<std::string, size_t> introducer;
  std::vector<DocFilterSpec> splices;
  for (size_t i = chain.size(); i-- > 0;) {
    const Node& node = *chain[i];
    NodeKind kind = node.kind();
    if (kind == NodeKind::kRootScan ||
        (kind == NodeKind::kCompute &&
         node.compute_term() != nullptr &&
         node.compute_term()->kind() == DataTerm::Kind::kName)) {
      const std::string& name = kind == NodeKind::kRootScan
                                    ? *node.root_name()
                                    : node.compute_term()->root_name();
      const std::string col = node.IntroducedColumns()[0];
      anchor.erase(col);
      const om::NameDef* def = schema.FindName(name);
      if (def == nullptr) continue;
      if (IsRootClass(def->type)) {
        anchor[col] = col;
        introducer[col] = i;
      } else if (IsRootCollection(def->type)) {
        anchor[col] = kRootCollection;
      }
      continue;
    }
    if (kind == NodeKind::kCompute) {
      // A nav-shaped term keeps its variables' shared anchor; any
      // other compute yields an unanchored column.
      const DataTerm* term = node.compute_term();
      const std::string out = node.IntroducedColumns()[0];
      std::optional<std::string> propagated;
      if (term != nullptr && NavShapedTerm(*term)) {
        std::set<calculus::Variable> vars;
        calculus::CollectVariables(*term, &vars);
        bool ok = !vars.empty();
        for (const calculus::Variable& v : vars) {
          auto it = anchor.find(v.name);
          if (it == anchor.end() || it->second == kRootCollection ||
              (propagated.has_value() && *propagated != it->second)) {
            ok = false;
            break;
          }
          propagated = it->second;
        }
        if (!ok) propagated.reset();
      }
      anchor.erase(out);
      if (propagated.has_value()) anchor[out] = *propagated;
      continue;
    }
    std::string in, out;
    if (node.NavColumns(&in, &out)) {
      auto it = anchor.find(in);
      std::optional<std::string> next;
      bool self = false;
      if (it != anchor.end()) {
        if (it->second == kRootCollection) {
          // Unnesting a collection of roots: each element is its own
          // document anchor.
          self = kind == NodeKind::kUnnestSet ||
                 kind == NodeKind::kUnnestList;
        } else {
          next = it->second;
        }
      }
      for (const std::string& c : node.IntroducedColumns()) anchor.erase(c);
      if (self) {
        anchor[out] = out;
        introducer[out] = i;
      } else if (next.has_value()) {
        anchor[out] = *next;
      }
      continue;
    }
    for (const std::string& c : node.IntroducedColumns()) anchor.erase(c);
    const std::string* pattern = node.index_contains_pattern();
    std::string w1, w2;
    size_t k = 0;
    bool is_near = node.index_near_words(&w1, &w2, &k);
    if (pattern == nullptr && !is_near) continue;
    // Every column the term reads must share one document anchor.
    std::vector<std::string> required = node.RequiredColumns();
    if (required.empty()) continue;
    std::string a;
    bool anchored = true;
    for (const std::string& r : required) {
      auto it = anchor.find(r);
      if (it == anchor.end() || it->second == kRootCollection) {
        anchored = false;
        break;
      }
      if (a.empty()) {
        a = it->second;
      } else if (a != it->second) {
        anchored = false;
        break;
      }
    }
    if (!anchored) continue;
    size_t j = introducer[a];
    if (j <= i + 1) continue;  // no navigation in between: not worth it
    splices.push_back(DocFilterSpec{j, a, pattern != nullptr,
                                    pattern != nullptr ? *pattern : "", w1,
                                    w2, k,
                                    StaticTermClass(node, types, schema)});
  }
  if (splices.empty()) return branch;

  // Rebuild the spine leaf-up, inserting filters at their gaps.
  PlanPtr rebuilt = chain.back();
  for (size_t i = chain.size() - 1; i-- > 0;) {
    for (const DocFilterSpec& s : splices) {
      if (s.introducer != i + 1) continue;
      if (s.contains) {
        Result<text::Pattern> p = text::Pattern::Parse(s.pattern_text);
        if (!p.ok()) continue;
        rebuilt = IndexDocFilterContains(std::move(rebuilt), s.doc_col,
                                         s.pattern_text,
                                         std::move(p).value(), s.term_class);
      } else {
        rebuilt = IndexDocFilterNear(std::move(rebuilt), s.doc_col, s.word1,
                                     s.word2, s.max_distance, s.term_class);
      }
      ++stats->doc_filters;
    }
    std::vector<PlanPtr> kids = chain[i]->children();
    kids[descend[i]] = std::move(rebuilt);
    rebuilt = chain[i]->WithChildren(std::move(kids));
  }
  return rebuilt;
}

}  // namespace

Status OptimizePlan(const om::Schema& schema, CompiledQuery* compiled,
                    const OptimizeOptions& options, OptimizeStats* stats) {
  // Fault site: an optimizer failure here must degrade (the caller
  // keeps the unoptimized plan), never fail the query.
  SGMLQDB_FAULT_POINT("optimizer.pushdown");
  OptimizeStats local;
  local.branches_before = compiled->branch_count;
  if (stats != nullptr) *stats = local;
  // Recognize the compiler's shape; anything else passes through.
  if (compiled->plan == nullptr ||
      compiled->plan->kind() != NodeKind::kDistinct ||
      compiled->plan->children().size() != 1) {
    return Status::OK();
  }
  const PlanPtr& union_all = compiled->plan->children()[0];
  if (union_all->kind() != NodeKind::kUnionAll) return Status::OK();
  const std::vector<PlanPtr>& branches = union_all->children();
  const bool have_types = compiled->branch_types.size() == branches.size();
  const std::map<std::string, Type> no_types;

  std::vector<PlanPtr> kept;
  std::vector<std::map<std::string, Type>> kept_types;
  kept.reserve(branches.size());
  for (size_t i = 0; i < branches.size(); ++i) {
    const std::map<std::string, Type>& types =
        have_types ? compiled->branch_types[i] : no_types;
    PlanPtr branch = branches[i];
    if (options.prune_branches &&
        (IsDeadPlaceholder(branch) ||
         HasInfeasibleTextFilter(branch, types, schema))) {
      ++local.branches_pruned;
      continue;
    }
    if (options.text_index_pushdown) {
      branch = RewriteIndexPushdown(branch, types, schema, &local);
    }
    if (options.filter_pushdown) {
      branch = SinkPredicates(branch, {}, &local);
    }
    if (options.text_index_pushdown) {
      branch = InsertDocFilters(schema, types, branch, &local);
    }
    kept.push_back(std::move(branch));
    if (have_types) kept_types.push_back(compiled->branch_types[i]);
  }
  compiled->plan = Distinct(UnionAll(std::move(kept)));
  compiled->branch_count = compiled->plan->children()[0]->children().size();
  if (have_types) compiled->branch_types = std::move(kept_types);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace sgmlqdb::algebra
