// Best-effort static typing of calculus data terms against a map of
// known column/variable types and the schema. Shared by the compiler
// (element types for generator bindings) and the optimizer (text-atom
// feasibility, object-only index joins, document anchors). The
// analysis mirrors the runtime evaluator's SelectAttrValue — in
// particular the one-level marked-union implicit selector — so
// "never" really means the atom soft-fails on every row.

#ifndef SGMLQDB_ALGEBRA_STATIC_TYPES_H_
#define SGMLQDB_ALGEBRA_STATIC_TYPES_H_

#include <map>
#include <optional>
#include <string>

#include "calculus/terms.h"
#include "om/schema.h"
#include "om/type.h"

namespace sgmlqdb::algebra {

/// Outcome of statically evaluating a term: `never` means the term
/// provably soft-fails (or yields a text-free atomic value) on every
/// row, so a contains/near atom over it is always false. `type` is
/// the term's type when derivable; unknown types are always feasible.
struct StaticTerm {
  bool never = false;
  std::optional<om::Type> type;

  static StaticTerm Never() { return StaticTerm{true, std::nullopt}; }
  static StaticTerm Unknown() { return StaticTerm{false, std::nullopt}; }
  static StaticTerm Of(om::Type t) {
    return StaticTerm{false, std::move(t)};
  }
};

/// Follows a class reference to its structural type; unknown on
/// failure.
std::optional<om::Type> ResolveClass(const om::Type& t,
                                     const om::Schema& schema);

/// Mirrors calculus SelectAttrValue on types: deref a class, find the
/// field, then the one-level marked-union implicit selector.
StaticTerm StaticAttrStep(const om::Type& in, const std::string& attr,
                          const om::Schema& schema);

/// Types a term given `types` for its variables. Handles variables,
/// constants, persistence roots, and `__select_attr` / `text` chains;
/// everything else is Unknown.
StaticTerm AnalyzeTerm(const calculus::DataTerm& term,
                       const std::map<std::string, om::Type>& types,
                       const om::Schema& schema);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_STATIC_TYPES_H_
