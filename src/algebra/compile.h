// Calculus -> algebra compilation (paper §5.4).
//
// A query of the (*) fragment
//
//     exists P1..Pn, A1..Am ( phi )
//
// where phi is a conjunction of path predicates and filters, is
// compiled by *schema analysis*: every path variable is replaced by
// the (finitely many, under the restricted semantics) schema paths
// that can instantiate it, and every attribute variable by the
// attributes available at its position. The result is a UnionAll of
// plans with no path/attribute variables — each a chain of navigation
// operators — exactly the paper's "union of queries with no attribute
// or path variables".
//
// Atoms the expander cannot turn into navigation (negations,
// interpreted predicates, comparisons) become Filter operators,
// evaluated per-row by the calculus checker — the variant-based
// selection over heterogeneous collections the paper mentions is the
// AttrStep/UnnestList drop-on-mismatch behaviour.

#ifndef SGMLQDB_ALGEBRA_COMPILE_H_
#define SGMLQDB_ALGEBRA_COMPILE_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "calculus/eval.h"
#include "calculus/formula.h"
#include "om/schema.h"
#include "om/type.h"

namespace sgmlqdb::algebra {

struct CompiledQuery {
  PlanPtr plan;
  std::vector<calculus::Variable> head;
  /// Sorts of every column (for env reconstruction in filters).
  std::map<std::string, calculus::Sort> sorts;
  /// Number of union branches the expansion produced (E3 reports it).
  size_t branch_count = 0;
  /// Per-branch static column types from the schema expansion, aligned
  /// with the UnionAll's branch order. The optimizer's pruning and
  /// index pushdown consult these; empty for pre-optimizer plans.
  std::vector<std::map<std::string, om::Type>> branch_types;
};

/// Compiles a calculus query against a schema. Fails with Unsupported
/// for shapes outside the compilable fragment (the naive evaluator
/// covers those).
Result<CompiledQuery> CompileQuery(const om::Schema& schema,
                                   const calculus::Query& query);

/// Runs a compiled query; result has the same shape as
/// calculus::EvaluateQuery (set of values / head tuples). A non-null
/// `branch_executor` lets the top-level UnionAll run its branches in
/// parallel (the result is identical and deterministically ordered).
Result<om::Value> ExecuteCompiled(const calculus::EvalContext& ctx,
                                  const CompiledQuery& compiled,
                                  BranchExecutor* branch_executor = nullptr);

/// Compile + execute.
Result<om::Value> EvaluateAlgebraic(const calculus::EvalContext& ctx,
                                    const om::Schema& schema,
                                    const calculus::Query& query);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_COMPILE_H_
