// The algebra of §5.4: operators over relations of variable bindings.
//
// A row maps column names (calculus variable names, plus internal
// "__k" columns) to values. The operator set is the complex-object
// algebra of [3,12] extended with the paper's requirements:
//  * VariantSelect / AttrStep drop rows whose tuple lacks the selected
//    attribute — this is the "variant-based selection (using implicit
//    selectors) over heterogeneous sets" the paper calls for;
//  * navigation steps optionally accumulate the concrete path taken
//    into a path column, making paths first-class in the algebra too;
//  * IndexSemiJoin / IndexNearJoin answer `contains` / `near` filters
//    through the inverted index's candidate sets (§4.1/§6) instead of
//    matching every row's text.
//
// Execution is materialized (each node produces its full row vector):
// simple, deterministic, and sufficient for the experiments. UnionAll
// optionally fans its branches onto a BranchExecutor; the shared-
// prefix memo is thread-safe so branches can race through common
// subplans.

#ifndef SGMLQDB_ALGEBRA_OPS_H_
#define SGMLQDB_ALGEBRA_OPS_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "calculus/eval.h"
#include "calculus/formula.h"
#include "om/database.h"
#include "path/path.h"
#include "text/pattern.h"

namespace sgmlqdb::algebra {

/// A binding row. Path-sorted columns store the path's value encoding;
/// attribute-sorted columns store strings.
using Row = std::map<std::string, om::Value>;

class Node;
using PlanPtr = std::shared_ptr<const Node>;

/// Discriminates plan nodes for the optimizer's tree rewrites (plans
/// are shared immutable trees, so rewrites inspect and rebuild rather
/// than mutate).
enum class NodeKind {
  kRootScan,
  kUnit,
  kAttrStep,
  kDerefStep,
  kClassFilter,
  kUnnestList,
  kIndexStep,
  kUnnestSet,
  kConstCol,
  kBindOrCheck,
  kCompute,
  kFilter,
  kIndexSemiJoin,
  kIndexNearJoin,
  kIndexDocFilter,
  kUnionAll,
  kAntiSemiJoin,
  kCrossProduct,
  kProject,
  kDistinct,
  kTopKScore,
  kGroupAggregate,
  kOrderBy,
};

/// Runs the branches of a parallel UnionAll. Implementations must
/// invoke fn(0) .. fn(n-1) exactly once each (any order, any thread)
/// and return after all have finished. The service layer provides a
/// thread-pool-backed implementation; execution is serial without one.
class BranchExecutor {
 public:
  virtual ~BranchExecutor() = default;
  virtual void Run(size_t n, const std::function<void(size_t)>& fn) = 0;
};

struct ExecContext;

/// Per-execution memo for plan nodes shared between union branches
/// (common prefixes of the §5.4 expansion): each node's rows are
/// computed once and shared. Thread-safe — per-entry locking lets
/// parallel branches compute disjoint prefixes concurrently while a
/// shared prefix blocks its second reader instead of recomputing.
class Memo {
 public:
  /// The rows of `node`, computing them on first call.
  Result<std::shared_ptr<const std::vector<Row>>> GetOrCompute(
      const Node& node, const ExecContext& ctx);

  size_t size() const;

 private:
  struct Entry {
    std::mutex mu;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const std::vector<Row>> rows;
  };

  mutable std::mutex mu_;
  std::map<const Node*, std::shared_ptr<Entry>> entries_;
};

/// Execution context: the database plus the calculus context used for
/// embedded filter formulas, the shared-prefix memo, and (optionally)
/// a branch executor for parallel UnionAll.
struct ExecContext {
  const calculus::EvalContext* calculus = nullptr;
  /// When set, a multi-branch UnionAll fans its branches out through
  /// this executor (cleared for nested unions — one fan-out level).
  BranchExecutor* branch_executor = nullptr;
  std::shared_ptr<Memo> memo = std::make_shared<Memo>();
  const om::Database* db() const { return calculus->db; }
};

/// Base of all plan nodes.
class Node {
 public:
  virtual ~Node() = default;

  /// Appends this node's output rows to `out`.
  virtual Status Execute(const ExecContext& ctx,
                         std::vector<Row>* out) const = 0;

  /// Execute with memoization: a node referenced by several parents
  /// (a shared union-branch prefix) computes once per execution and
  /// appends the shared rows.
  Status ExecuteShared(const ExecContext& ctx, std::vector<Row>* out) const;

  /// This node's rows as an immutable shared vector — memoized, no
  /// per-parent copy of the vector itself.
  Result<std::shared_ptr<const std::vector<Row>>> ExecuteSharedRows(
      const ExecContext& ctx) const;

  /// One-line description ("AttrStep s -> .title t"); children are
  /// rendered by PlanToString.
  virtual std::string Describe() const = 0;

  virtual NodeKind kind() const = 0;

  /// A structurally identical node over different inputs (the
  /// optimizer's rebuild primitive). `children.size()` must match.
  virtual PlanPtr WithChildren(std::vector<PlanPtr> children) const = 0;

  /// Columns this node adds to (or overwrites in) its input rows.
  /// A predicate may be pushed below this node only if it reads none
  /// of them.
  virtual std::vector<std::string> IntroducedColumns() const { return {}; }

  /// For predicate nodes (Filter / IndexSemiJoin / IndexNearJoin):
  /// the columns the predicate reads. Empty otherwise.
  virtual std::vector<std::string> RequiredColumns() const { return {}; }

  /// FilterNode only: the wrapped formula and its sorts (null
  /// otherwise). Lets the optimizer inspect filters for index
  /// pushdown without downcasting.
  virtual const calculus::Formula* filter_formula() const { return nullptr; }
  virtual const std::map<std::string, calculus::Sort>* filter_sorts() const {
    return nullptr;
  }

  /// IndexSemiJoin with the object-only guarantee: the contains
  /// pattern text (null otherwise). Non-null means every matching
  /// row's term value is an indexed element — the premise under which
  /// a document-level prefilter (IndexDocFilter) is sound.
  virtual const std::string* index_contains_pattern() const {
    return nullptr;
  }
  /// IndexNearJoin, object-only with both words plain: fills the words
  /// and distance and returns true. False otherwise.
  virtual bool index_near_words(std::string*, std::string*,
                                size_t*) const {
    return false;
  }
  /// IndexSemiJoin / IndexNearJoin: the filtered data term (null
  /// otherwise).
  virtual const calculus::DataTerm* index_term() const { return nullptr; }
  /// RootScanNode: the persistence name scanned (null otherwise).
  virtual const std::string* root_name() const { return nullptr; }
  /// ComputeNode: the computed data term (null otherwise).
  virtual const calculus::DataTerm* compute_term() const { return nullptr; }
  /// Steps that bind one output column by navigating from (or copying)
  /// one input column — AttrStep, DerefStep, UnnestList, IndexStep,
  /// UnnestSet, BindOrCheck. Fills the column names and returns true.
  /// Navigation never leaves the input object's document, which is
  /// what lets the optimizer trace columns back to a document anchor.
  virtual bool NavColumns(std::string*, std::string*) const {
    return false;
  }

  const std::vector<PlanPtr>& children() const { return children_; }

 protected:
  std::vector<PlanPtr> children_;
};

/// Pretty-prints a plan tree.
std::string PlanToString(const PlanPtr& plan);

// ---------------------------------------------------------------------
// Factories (each returns a new plan node).

/// One row binding `col` to the persistence root's value.
PlanPtr RootScan(std::string root_name, std::string col);

/// One row with no columns (unit input for constant plans).
PlanPtr Unit();

/// For each input row: bind `out` to field `attr` of tuple `col`;
/// rows without the attribute are dropped (implicit selector). If
/// `path_col` is non-empty, appends ".attr" to that path column.
PlanPtr AttrStep(PlanPtr input, std::string col, std::string attr,
                 std::string out, std::string path_col = "");

/// Dereference the object in `col` into `out` (drops nil / dangling).
PlanPtr DerefStep(PlanPtr input, std::string col, std::string out,
                  std::string path_col = "");

/// Keep rows whose `col` is an object of class `class_name` (or a
/// subclass).
PlanPtr ClassFilter(PlanPtr input, std::string col, std::string class_name);

/// Unnest the list in `col`: one output row per element, bound to
/// `out`; `pos_col` (optional) receives the integer index.
PlanPtr UnnestList(PlanPtr input, std::string col, std::string out,
                   std::string pos_col = "", std::string path_col = "");

/// Select list element at a constant index.
PlanPtr IndexStep(PlanPtr input, std::string col, int64_t index,
                  std::string out, std::string path_col = "");

/// Unnest the set in `col` into `out`.
PlanPtr UnnestSet(PlanPtr input, std::string col, std::string out,
                  std::string path_col = "");

/// Bind `out` to a constant in every row.
PlanPtr ConstCol(PlanPtr input, std::string out, om::Value value);

/// Bind `out` to an empty-path value (start of a path accumulator).
PlanPtr EmptyPathCol(PlanPtr input, std::string out);

/// Copy `src` to `dst`; if `dst` already exists, keep only rows where
/// the values are equal (capture-variable semantics).
PlanPtr BindOrCheck(PlanPtr input, std::string src, std::string dst);

/// Bind `out` to the result of evaluating a calculus data term whose
/// variables are taken from the row. Rows where evaluation soft-fails
/// are dropped.
PlanPtr Compute(PlanPtr input, std::string out, calculus::DataTermPtr term,
                const std::map<std::string, calculus::Sort>& sorts);

/// Keep rows satisfying the (fully bound) calculus formula.
PlanPtr Filter(PlanPtr input, calculus::FormulaPtr formula,
               const std::map<std::string, calculus::Sort>& sorts);

/// Index-assisted `contains` filter (§4.1/§6): keep rows where the
/// text of `term` matches `pattern`. When the execution context
/// carries an inverted index, rows whose term value is an element
/// object are decided (or pre-filtered) through the index's candidate
/// set instead of matching their text. `object_only` asserts the
/// term's static type is an element class on every branch row — then
/// an empty candidate set short-circuits the whole subplan.
PlanPtr IndexSemiJoin(PlanPtr input, calculus::DataTermPtr term,
                      std::string pattern_text, text::Pattern pattern,
                      const std::map<std::string, calculus::Sort>& sorts,
                      bool object_only);

/// Index-assisted `near` filter: keep rows where `word1` and `word2`
/// occur within `max_distance` words of the text of `term`. Element
/// objects are answered exactly from the positional index when both
/// words are plain.
PlanPtr IndexNearJoin(PlanPtr input, calculus::DataTermPtr term,
                      std::string word1, std::string word2,
                      size_t max_distance,
                      const std::map<std::string, calculus::Sort>& sorts,
                      bool object_only);

/// Document-level index prefilter: keep rows whose document — the one
/// the element object in `doc_col` was loaded under — contains at
/// least one candidate unit for the contains pattern. When
/// `term_class` is non-empty, only candidate units of that class (or
/// a subclass) count: the downstream join's term is statically of
/// that class, so no other unit can be its value. Sound only above
/// subplans feeding an object-only IndexSemiJoin on a term navigated
/// from `doc_col` (navigation stays inside a document). Pass-through
/// when the context lacks an index or unit->doc map.
PlanPtr IndexDocFilterContains(PlanPtr input, std::string doc_col,
                               std::string pattern_text,
                               text::Pattern pattern,
                               std::string term_class);

/// The near-predicate form of IndexDocFilterContains (both words
/// plain, so the positional index's unit set is exact).
PlanPtr IndexDocFilterNear(PlanPtr input, std::string doc_col,
                           std::string word1, std::string word2,
                           size_t max_distance, std::string term_class);

/// Concatenation of the children's outputs (the union of §5.4). With
/// a BranchExecutor in the context, branches execute in parallel;
/// output order is the branch order either way.
PlanPtr UnionAll(std::vector<PlanPtr> inputs);

/// Rows of `left` whose projection on `cols` does not appear in
/// `right`'s projection on `cols` (anti-semi-join; used for negated
/// path predicates such as Q4's difference).
PlanPtr AntiSemiJoin(PlanPtr left, PlanPtr right,
                     std::vector<std::string> cols);

/// Cross product (for independent generators).
PlanPtr CrossProduct(PlanPtr left, PlanPtr right);

/// Keep only the named columns.
PlanPtr Project(PlanPtr input, std::vector<std::string> cols);

/// Remove duplicate rows.
PlanPtr Distinct(PlanPtr input);

/// Builds a calculus environment from a row (needs variable sorts).
calculus::Env RowToEnv(const Row& row,
                       const std::map<std::string, calculus::Sort>& sorts);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_OPS_H_
