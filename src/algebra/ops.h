// The algebra of §5.4: operators over relations of variable bindings.
//
// A row maps column names (calculus variable names, plus internal
// "__k" columns) to values. The operator set is the complex-object
// algebra of [3,12] extended with the paper's requirements:
//  * VariantSelect / AttrStep drop rows whose tuple lacks the selected
//    attribute — this is the "variant-based selection (using implicit
//    selectors) over heterogeneous sets" the paper calls for;
//  * navigation steps optionally accumulate the concrete path taken
//    into a path column, making paths first-class in the algebra too.
//
// Execution is materialized (each node produces its full row vector):
// simple, deterministic, and sufficient for the experiments.

#ifndef SGMLQDB_ALGEBRA_OPS_H_
#define SGMLQDB_ALGEBRA_OPS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "calculus/eval.h"
#include "calculus/formula.h"
#include "om/database.h"
#include "path/path.h"

namespace sgmlqdb::algebra {

/// A binding row. Path-sorted columns store the path's value encoding;
/// attribute-sorted columns store strings.
using Row = std::map<std::string, om::Value>;

class Node;
using PlanPtr = std::shared_ptr<const Node>;

/// Execution context: the database plus the calculus context used for
/// embedded filter formulas, and a per-execution memo so plan nodes
/// shared between union branches (common prefixes of the §5.4
/// expansion) run once.
struct ExecContext {
  const calculus::EvalContext* calculus = nullptr;
  mutable std::map<const class Node*, std::shared_ptr<std::vector<
      std::map<std::string, om::Value>>>> memo;
  const om::Database* db() const { return calculus->db; }
};

/// Base of all plan nodes.
class Node {
 public:
  virtual ~Node() = default;

  /// Appends this node's output rows to `out`.
  virtual Status Execute(const ExecContext& ctx,
                         std::vector<Row>* out) const = 0;

  /// Execute with memoization: a node referenced by several parents
  /// (a shared union-branch prefix) computes once per execution.
  Status ExecuteShared(const ExecContext& ctx, std::vector<Row>* out) const;

  /// One-line description ("AttrStep s -> .title t"); children are
  /// rendered by PlanToString.
  virtual std::string Describe() const = 0;

  const std::vector<PlanPtr>& children() const { return children_; }

 protected:
  std::vector<PlanPtr> children_;
};

/// Pretty-prints a plan tree.
std::string PlanToString(const PlanPtr& plan);

// ---------------------------------------------------------------------
// Factories (each returns a new plan node).

/// One row binding `col` to the persistence root's value.
PlanPtr RootScan(std::string root_name, std::string col);

/// One row with no columns (unit input for constant plans).
PlanPtr Unit();

/// For each input row: bind `out` to field `attr` of tuple `col`;
/// rows without the attribute are dropped (implicit selector). If
/// `path_col` is non-empty, appends ".attr" to that path column.
PlanPtr AttrStep(PlanPtr input, std::string col, std::string attr,
                 std::string out, std::string path_col = "");

/// Dereference the object in `col` into `out` (drops nil / dangling).
PlanPtr DerefStep(PlanPtr input, std::string col, std::string out,
                  std::string path_col = "");

/// Keep rows whose `col` is an object of class `class_name` (or a
/// subclass).
PlanPtr ClassFilter(PlanPtr input, std::string col, std::string class_name);

/// Unnest the list in `col`: one output row per element, bound to
/// `out`; `pos_col` (optional) receives the integer index.
PlanPtr UnnestList(PlanPtr input, std::string col, std::string out,
                   std::string pos_col = "", std::string path_col = "");

/// Select list element at a constant index.
PlanPtr IndexStep(PlanPtr input, std::string col, int64_t index,
                  std::string out, std::string path_col = "");

/// Unnest the set in `col` into `out`.
PlanPtr UnnestSet(PlanPtr input, std::string col, std::string out,
                  std::string path_col = "");

/// Bind `out` to a constant in every row.
PlanPtr ConstCol(PlanPtr input, std::string out, om::Value value);

/// Bind `out` to an empty-path value (start of a path accumulator).
PlanPtr EmptyPathCol(PlanPtr input, std::string out);

/// Copy `src` to `dst`; if `dst` already exists, keep only rows where
/// the values are equal (capture-variable semantics).
PlanPtr BindOrCheck(PlanPtr input, std::string src, std::string dst);

/// Bind `out` to the result of evaluating a calculus data term whose
/// variables are taken from the row. Rows where evaluation soft-fails
/// are dropped.
PlanPtr Compute(PlanPtr input, std::string out, calculus::DataTermPtr term,
                const std::map<std::string, calculus::Sort>& sorts);

/// Keep rows satisfying the (fully bound) calculus formula.
PlanPtr Filter(PlanPtr input, calculus::FormulaPtr formula,
               const std::map<std::string, calculus::Sort>& sorts);

/// Concatenation of the children's outputs (the union of §5.4).
PlanPtr UnionAll(std::vector<PlanPtr> inputs);

/// Rows of `left` whose projection on `cols` does not appear in
/// `right`'s projection on `cols` (anti-semi-join; used for negated
/// path predicates such as Q4's difference).
PlanPtr AntiSemiJoin(PlanPtr left, PlanPtr right,
                     std::vector<std::string> cols);

/// Cross product (for independent generators).
PlanPtr CrossProduct(PlanPtr left, PlanPtr right);

/// Keep only the named columns.
PlanPtr Project(PlanPtr input, std::vector<std::string> cols);

/// Remove duplicate rows.
PlanPtr Distinct(PlanPtr input);

/// Builds a calculus environment from a row (needs variable sorts).
calculus::Env RowToEnv(const Row& row,
                       const std::map<std::string, calculus::Sort>& sorts);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_OPS_H_
