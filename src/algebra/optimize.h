// Algebraic plan optimizer (between CompileQuery and execution).
//
// The §5.4 expansion produces Distinct(UnionAll(branch...)) where each
// branch is a navigation chain with trailing Filter nodes. Three
// rewrites make that union index- and parallelism-friendly:
//
//  1. Text-index pushdown — a Filter wrapping a `contains`/`near` atom
//     with a constant pattern becomes an IndexSemiJoin/IndexNearJoin,
//     which resolves the pattern once and consults the inverted
//     index's candidate set before (or instead of) matching text.
//  2. Filter pushdown — predicate nodes sink below every navigation
//     step that does not introduce a column they read, so rows are
//     discarded before fan-out (UnnestList) instead of after.
//  3. Branch pruning — a branch whose static column types prove a
//     text predicate can never hold (e.g. `contains` on an integer
//     attribute, or an attribute the schema path cannot reach) is
//     dropped from the union before any data is touched, as are the
//     compiler's dead-alternative placeholders.
//  4. Document prefilter — for an object-only IndexSemiJoin/
//     IndexNearJoin whose term traces back (through navigation steps
//     only) to a document anchor column, an IndexDocFilter is spliced
//     just above the anchor's introducer: whole documents containing
//     no candidate unit are skipped before the navigation between
//     anchor and predicate ever runs. Sound because navigation
//     (attribute steps, unnests, IDREF deref) never leaves a
//     document, and candidate sets are supersets of matching units.
//
// The optimizer only reorders/replaces filters against the same rows,
// so optimized and unoptimized plans produce identical results (the
// optimize_test parity matrix enforces this).

#ifndef SGMLQDB_ALGEBRA_OPTIMIZE_H_
#define SGMLQDB_ALGEBRA_OPTIMIZE_H_

#include "algebra/compile.h"
#include "om/schema.h"

namespace sgmlqdb::algebra {

struct OptimizeOptions {
  bool text_index_pushdown = true;
  bool filter_pushdown = true;
  bool prune_branches = true;
};

struct OptimizeStats {
  /// Union branches before / dropped by pruning.
  size_t branches_before = 0;
  size_t branches_pruned = 0;
  /// Filters converted to IndexSemiJoin / IndexNearJoin.
  size_t index_pushdowns = 0;
  /// Predicates that sank below at least one navigation step.
  size_t filters_pushed = 0;
  /// IndexDocFilter nodes spliced above document anchors.
  size_t doc_filters = 0;
};

/// Rewrites `compiled` in place. A plan whose shape the optimizer does
/// not recognize is left untouched (never an error).
Status OptimizePlan(const om::Schema& schema, CompiledQuery* compiled,
                    const OptimizeOptions& options = {},
                    OptimizeStats* stats = nullptr);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_OPTIMIZE_H_
