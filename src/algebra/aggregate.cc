#include "algebra/aggregate.h"

#include <utility>

namespace sgmlqdb::algebra {

namespace {

class TopKScoreNode : public Node {
 public:
  explicit TopKScoreNode(std::shared_ptr<const rank::PostSpec> post)
      : post_(std::move(post)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    SGMLQDB_ASSIGN_OR_RETURN(
        std::vector<rank::Row> rows,
        rank::TopKScoreRows(*ctx.calculus, post_->rank,
                            ctx.calculus->rank_scoring,
                            /*use_index=*/true));
    out->insert(out->end(), std::make_move_iterator(rows.begin()),
                std::make_move_iterator(rows.end()));
    return Status::OK();
  }

  std::string Describe() const override {
    std::string s =
        "TopKScore " + post_->rank.root_name + " by " +
        post_->rank.pattern.ToString();
    if (post_->rank.limit > 0) {
      s += " limit " + std::to_string(post_->rank.limit);
    }
    return s;
  }

  NodeKind kind() const override { return NodeKind::kTopKScore; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    (void)children;
    return std::make_shared<TopKScoreNode>(post_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {"__doc", "__score"};
  }

 private:
  std::shared_ptr<const rank::PostSpec> post_;
};

class GroupAggregateNode : public Node {
 public:
  GroupAggregateNode(PlanPtr input, std::shared_ptr<const rank::PostSpec> post)
      : post_(std::move(post)) {
    children_ = {std::move(input)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->ExecuteShared(ctx, &in));
    SGMLQDB_ASSIGN_OR_RETURN(std::vector<rank::Row> rows,
                             rank::AggregateRows(post_->agg, in));
    out->insert(out->end(), std::make_move_iterator(rows.begin()),
                std::make_move_iterator(rows.end()));
    return Status::OK();
  }

  std::string Describe() const override {
    return std::string("GroupAggregate ") + rank::AggKindName(post_->agg.kind) +
           " keys=" + std::to_string(post_->agg.key_count);
  }

  NodeKind kind() const override { return NodeKind::kGroupAggregate; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<GroupAggregateNode>(std::move(children[0]), post_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {"__k", "__c", "__s"};
  }

 private:
  std::shared_ptr<const rank::PostSpec> post_;
};

class OrderByNode : public Node {
 public:
  OrderByNode(PlanPtr input, std::shared_ptr<const rank::PostSpec> post)
      : post_(std::move(post)) {
    children_ = {std::move(input)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->ExecuteShared(ctx, &in));
    SGMLQDB_ASSIGN_OR_RETURN(std::vector<rank::Row> rows,
                             rank::OrderRows(post_->order, in));
    out->insert(out->end(), std::make_move_iterator(rows.begin()),
                std::make_move_iterator(rows.end()));
    return Status::OK();
  }

  std::string Describe() const override {
    return post_->order.descending ? "OrderBy desc" : "OrderBy asc";
  }

  NodeKind kind() const override { return NodeKind::kOrderBy; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<OrderByNode>(std::move(children[0]), post_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {"__k", "__v"};
  }

 private:
  std::shared_ptr<const rank::PostSpec> post_;
};

}  // namespace

PlanPtr TopKScore(std::shared_ptr<const rank::PostSpec> post) {
  return std::make_shared<TopKScoreNode>(std::move(post));
}

PlanPtr GroupAggregate(PlanPtr input,
                       std::shared_ptr<const rank::PostSpec> post) {
  return std::make_shared<GroupAggregateNode>(std::move(input),
                                              std::move(post));
}

PlanPtr OrderBy(PlanPtr input, std::shared_ptr<const rank::PostSpec> post) {
  return std::make_shared<OrderByNode>(std::move(input), std::move(post));
}

}  // namespace sgmlqdb::algebra
