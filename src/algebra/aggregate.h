// Post-processing plan nodes for the ranked-retrieval / aggregation
// subsystem (src/rank/): the three operators that sit at the root of a
// plan, above the optimizer's Distinct(UnionAll(...)) shape, and turn
// distinct binding rows into the statement's partial rows.
//
//  * TopKScore — leaf node for `rank(Root by <pattern>) limit k`:
//    BM25-scores the index's candidate documents with a bounded
//    k-heap and emits {__doc, __score} rows in final order.
//  * GroupAggregate — hash aggregation over the child's distinct
//    bindings into one {__k, __c, __s} partial row per group.
//  * OrderBy — dedups and orders the child's (__o0, __r) pairs into
//    {__k, __v} rows (merge-ordered: per-shard runs merge at the
//    gather site by the same comparator).
//
// All three emit *partial* rows, not client values: the statement
// layer (oql::ExecutePrepared / the sharded service) encodes them
// with rank::PostRowsToPartial and merges any number of partials with
// rank::FinalizePartials, which is what makes the sharded scatter
// byte-identical to single-store execution.

#ifndef SGMLQDB_ALGEBRA_AGGREGATE_H_
#define SGMLQDB_ALGEBRA_AGGREGATE_H_

#include <memory>

#include "algebra/ops.h"
#include "rank/scoring.h"

namespace sgmlqdb::algebra {

/// Leaf plan for a rank statement (kTopKScore). Candidates and term
/// frequencies come from the context's inverted index via galloping
/// cursors; scores use the context's rank_scoring when set (global
/// cross-shard statistics), else the snapshot's own CorpusStats.
PlanPtr TopKScore(std::shared_ptr<const rank::PostSpec> post);

/// Hash-aggregate over `input`'s rows (kGroupAggregate).
PlanPtr GroupAggregate(PlanPtr input,
                       std::shared_ptr<const rank::PostSpec> post);

/// Ordered dedup of `input`'s (__o0, __r) rows (kOrderBy).
PlanPtr OrderBy(PlanPtr input, std::shared_ptr<const rank::PostSpec> post);

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_AGGREGATE_H_
