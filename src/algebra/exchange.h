// ExchangeOperator: the generic scatter-gather primitive of the
// execution layer.
//
// One plan, N independent partitions of the work: scatter the same
// task over indices 0..n-1 (on a BranchExecutor when one is present,
// serially otherwise), gather the partial outputs, and merge them
// deterministically — rows concatenate in task order (exactly what
// the serial loop would produce), set-valued results merge through
// om::Value::Set's canonical construction (cross-partition dedup +
// total order). Two call sites share it:
//
//  * UnionAllNode fans the §5.4 expansion's union branches over the
//    service's branch pool (the former parallel-union special case);
//  * the sharded QueryService scatters a compiled plan to every
//    shard's pinned snapshot and merges the per-shard result sets.
//
// Error semantics are deterministic too: when several tasks fail, the
// error of the lowest task index wins — the same error a serial
// left-to-right execution would have surfaced.

#ifndef SGMLQDB_ALGEBRA_EXCHANGE_H_
#define SGMLQDB_ALGEBRA_EXCHANGE_H_

#include <functional>
#include <vector>

#include "algebra/ops.h"
#include "om/value.h"

namespace sgmlqdb::algebra {

class ExchangeOperator {
 public:
  /// `executor` may be null: every Gather degrades to the serial loop
  /// (no fan-out, no intermediate buffers for rows).
  explicit ExchangeOperator(BranchExecutor* executor)
      : executor_(executor) {}

  /// True when `n` tasks would actually fan out.
  bool parallel_for(size_t n) const { return executor_ != nullptr && n > 1; }

  using RowTask = std::function<Status(size_t, std::vector<Row>*)>;

  /// Scatters task(0..n-1); gathers each task's rows concatenated in
  /// task order into `out`. Serial execution appends straight to
  /// `out` (no per-task buffer), so a single-task or executor-less
  /// exchange is exactly the plain loop.
  Status GatherRows(size_t n, const RowTask& task,
                    std::vector<Row>* out) const;

  using ValueTask = std::function<Result<om::Value>(size_t)>;

  /// Scatters task(0..n-1); gathers the per-task values in task
  /// order.
  Result<std::vector<om::Value>> GatherValues(size_t n,
                                              const ValueTask& task) const;

  /// Merges per-partition result sets into one canonical set: every
  /// part must be a kSet; their elements are pooled and rebuilt via
  /// om::Value::Set, whose canonical construction deduplicates across
  /// partitions and fixes the order — the merged result is
  /// byte-identical to single-partition execution.
  static Result<om::Value> MergeSets(const std::vector<om::Value>& parts);

 private:
  BranchExecutor* executor_;
};

}  // namespace sgmlqdb::algebra

#endif  // SGMLQDB_ALGEBRA_EXCHANGE_H_
