#include "algebra/exchange.h"

#include <utility>

namespace sgmlqdb::algebra {

Status ExchangeOperator::GatherRows(size_t n, const RowTask& task,
                                    std::vector<Row>* out) const {
  if (!parallel_for(n)) {
    for (size_t i = 0; i < n; ++i) {
      SGMLQDB_RETURN_IF_ERROR(task(i, out));
    }
    return Status::OK();
  }
  std::vector<std::vector<Row>> parts(n);
  std::vector<Status> statuses(n, Status::OK());
  executor_->Run(n, [&](size_t i) { statuses[i] = task(i, &parts[i]); });
  // Deterministic: errors and rows are taken in task order, exactly
  // as the serial loop would produce them.
  for (const Status& s : statuses) {
    SGMLQDB_RETURN_IF_ERROR(s);
  }
  size_t total = 0;
  for (const std::vector<Row>& p : parts) total += p.size();
  out->reserve(out->size() + total);
  for (std::vector<Row>& p : parts) {
    for (Row& row : p) out->push_back(std::move(row));
  }
  return Status::OK();
}

Result<std::vector<om::Value>> ExchangeOperator::GatherValues(
    size_t n, const ValueTask& task) const {
  std::vector<Result<om::Value>> parts(n, Result<om::Value>(om::Value()));
  if (!parallel_for(n)) {
    for (size_t i = 0; i < n; ++i) parts[i] = task(i);
  } else {
    executor_->Run(n, [&](size_t i) { parts[i] = task(i); });
  }
  std::vector<om::Value> out;
  out.reserve(n);
  for (Result<om::Value>& p : parts) {
    if (!p.ok()) return p.status();
    out.push_back(std::move(p).value());
  }
  return out;
}

Result<om::Value> ExchangeOperator::MergeSets(
    const std::vector<om::Value>& parts) {
  std::vector<om::Value> elems;
  size_t total = 0;
  for (const om::Value& part : parts) {
    if (part.kind() != om::ValueKind::kSet) {
      return Status::Internal(
          "exchange merge expects set-valued partial results, got " +
          std::string(om::ValueKindToString(part.kind())));
    }
    total += part.size();
  }
  elems.reserve(total);
  for (const om::Value& part : parts) {
    for (size_t i = 0; i < part.size(); ++i) {
      elems.push_back(part.Element(i));
    }
  }
  return om::Value::Set(std::move(elems));
}

}  // namespace sgmlqdb::algebra
