#include "algebra/ops.h"

#include <algorithm>
#include <functional>
#include <set>

namespace sgmlqdb::algebra {

using calculus::Sort;
using om::Value;
using om::ValueKind;
using path::Path;
using path::PathStep;

Status Node::ExecuteShared(const ExecContext& ctx,
                           std::vector<Row>* out) const {
  auto it = ctx.memo.find(this);
  if (it == ctx.memo.end()) {
    auto rows = std::make_shared<std::vector<Row>>();
    SGMLQDB_RETURN_IF_ERROR(Execute(ctx, rows.get()));
    it = ctx.memo.emplace(this, std::move(rows)).first;
  }
  out->insert(out->end(), it->second->begin(), it->second->end());
  return Status::OK();
}

namespace {

/// Appends a step to a path column (stored as a path value).
Result<Value> AppendToPathCol(const Value& current, PathStep step) {
  SGMLQDB_ASSIGN_OR_RETURN(Path p, Path::FromValue(current));
  return p.Append(std::move(step)).ToValue();
}

Status ExtendPath(Row* row, const std::string& path_col, PathStep step) {
  if (path_col.empty()) return Status::OK();
  auto it = row->find(path_col);
  Value current =
      it == row->end() ? Path().ToValue() : it->second;
  SGMLQDB_ASSIGN_OR_RETURN(Value next, AppendToPathCol(current, step));
  (*row)[path_col] = std::move(next);
  return Status::OK();
}

class RootScanNode : public Node {
 public:
  RootScanNode(std::string root, std::string col)
      : root_(std::move(root)), col_(std::move(col)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    SGMLQDB_ASSIGN_OR_RETURN(Value v, ctx.db()->LookupName(root_));
    Row row;
    row[col_] = std::move(v);
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "RootScan " + root_ + " -> " + col_;
  }

 private:
  std::string root_;
  std::string col_;
};

class UnitNode : public Node {
 public:
  Status Execute(const ExecContext&, std::vector<Row>* out) const override {
    out->push_back(Row{});
    return Status::OK();
  }
  std::string Describe() const override { return "Unit"; }
};

/// Shared base for per-row transforms.
class UnaryNode : public Node {
 public:
  explicit UnaryNode(PlanPtr input) { children_ = {std::move(input)}; }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> in;
    if (children_[0].use_count() > 1) {
      SGMLQDB_RETURN_IF_ERROR(children_[0]->ExecuteShared(ctx, &in));
    } else {
      SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    }
    for (Row& row : in) {
      SGMLQDB_RETURN_IF_ERROR(Transform(ctx, std::move(row), out));
    }
    return Status::OK();
  }

  virtual Status Transform(const ExecContext& ctx, Row row,
                           std::vector<Row>* out) const = 0;
};

class AttrStepNode : public UnaryNode {
 public:
  AttrStepNode(PlanPtr input, std::string col, std::string attr,
               std::string out, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        attr_(std::move(attr)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kTuple) {
      return Status::OK();  // implicit selector: drop
    }
    std::optional<Value> f = it->second.FindField(attr_);
    if (!f.has_value()) return Status::OK();  // drop (variant select)
    row[out_] = *f;
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_,
                                       PathStep::Attr(attr_)));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "AttrStep " + col_ + " ." + attr_ + " -> " + out_;
  }

 private:
  std::string col_, attr_, out_, path_col_;
};

class DerefStepNode : public UnaryNode {
 public:
  DerefStepNode(PlanPtr input, std::string col, std::string out,
                std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kObject) {
      return Status::OK();
    }
    Result<Value> v = ctx.db()->Deref(it->second.AsObject());
    if (!v.ok()) return Status::OK();  // dangling: drop
    row[out_] = std::move(v).value();
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_, PathStep::Deref()));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "DerefStep " + col_ + " -> " + out_;
  }

 private:
  std::string col_, out_, path_col_;
};

class ClassFilterNode : public UnaryNode {
 public:
  ClassFilterNode(PlanPtr input, std::string col, std::string class_name)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        class_(std::move(class_name)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kObject) {
      return Status::OK();
    }
    const std::string* cls = ctx.db()->ClassOf(it->second.AsObject());
    if (cls == nullptr || !ctx.db()->schema().IsSubclassOf(*cls, class_)) {
      return Status::OK();
    }
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "ClassFilter " + col_ + " : " + class_;
  }

 private:
  std::string col_, class_;
};

class UnnestListNode : public UnaryNode {
 public:
  UnnestListNode(PlanPtr input, std::string col, std::string out,
                 std::string pos_col, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        pos_col_(std::move(pos_col)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end()) return Status::OK();
    // Ordered tuples are also heterogeneous lists (§4.4).
    Value list = it->second.kind() == ValueKind::kTuple
                     ? it->second.AsHeterogeneousList()
                     : it->second;
    if (list.kind() != ValueKind::kList) return Status::OK();
    for (size_t i = 0; i < list.size(); ++i) {
      Row r = row;
      r[out_] = list.Element(i);
      if (!pos_col_.empty()) {
        r[pos_col_] = Value::Integer(static_cast<int64_t>(i));
      }
      SGMLQDB_RETURN_IF_ERROR(ExtendPath(
          &r, path_col_, PathStep::Index(static_cast<int64_t>(i))));
      out->push_back(std::move(r));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return "UnnestList " + col_ + " -> " + out_;
  }

 private:
  std::string col_, out_, pos_col_, path_col_;
};

class IndexStepNode : public UnaryNode {
 public:
  IndexStepNode(PlanPtr input, std::string col, int64_t index,
                std::string out, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        index_(index),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end()) return Status::OK();
    Value list = it->second.kind() == ValueKind::kTuple
                     ? it->second.AsHeterogeneousList()
                     : it->second;
    if (list.kind() != ValueKind::kList || index_ < 0 ||
        static_cast<size_t>(index_) >= list.size()) {
      return Status::OK();
    }
    row[out_] = list.Element(static_cast<size_t>(index_));
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_,
                                       PathStep::Index(index_)));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "IndexStep " + col_ + "[" + std::to_string(index_) + "] -> " +
           out_;
  }

 private:
  std::string col_;
  int64_t index_;
  std::string out_, path_col_;
};

class UnnestSetNode : public UnaryNode {
 public:
  UnnestSetNode(PlanPtr input, std::string col, std::string out,
                std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kSet) {
      return Status::OK();
    }
    Value set = it->second;
    for (size_t i = 0; i < set.size(); ++i) {
      Row r = row;
      r[out_] = set.Element(i);
      SGMLQDB_RETURN_IF_ERROR(
          ExtendPath(&r, path_col_, PathStep::SetElem(set.Element(i))));
      out->push_back(std::move(r));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return "UnnestSet " + col_ + " -> " + out_;
  }

 private:
  std::string col_, out_, path_col_;
};

class ConstColNode : public UnaryNode {
 public:
  ConstColNode(PlanPtr input, std::string out, Value value)
      : UnaryNode(std::move(input)),
        out_(std::move(out)),
        value_(std::move(value)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    row[out_] = value_;
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "ConstCol " + out_ + " = " + value_.ToString();
  }

 private:
  std::string out_;
  Value value_;
};

class BindOrCheckNode : public UnaryNode {
 public:
  BindOrCheckNode(PlanPtr input, std::string src, std::string dst)
      : UnaryNode(std::move(input)), src_(std::move(src)),
        dst_(std::move(dst)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(src_);
    if (it == row.end()) return Status::OK();
    auto existing = row.find(dst_);
    if (existing != row.end()) {
      if (existing->second != it->second) return Status::OK();
    } else {
      row[dst_] = it->second;
    }
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "BindOrCheck " + src_ + " -> " + dst_;
  }

 private:
  std::string src_, dst_;
};

class ComputeNode : public UnaryNode {
 public:
  ComputeNode(PlanPtr input, std::string out, calculus::DataTermPtr term,
              std::map<std::string, Sort> sorts)
      : UnaryNode(std::move(input)),
        out_(std::move(out)),
        term_(std::move(term)),
        sorts_(std::move(sorts)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    calculus::Env env = RowToEnv(row, sorts_);
    Result<Value> v =
        calculus::EvaluateClosedTermInEnv(*ctx.calculus, *term_, env);
    if (!v.ok()) {
      if (v.status().code() == StatusCode::kNotFound ||
          v.status().code() == StatusCode::kTypeError) {
        return Status::OK();  // soft failure: drop row
      }
      return v.status();
    }
    row[out_] = std::move(v).value();
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "Compute " + out_ + " = " + term_->ToString();
  }

 private:
  std::string out_;
  calculus::DataTermPtr term_;
  std::map<std::string, Sort> sorts_;
};

class FilterNode : public UnaryNode {
 public:
  FilterNode(PlanPtr input, calculus::FormulaPtr formula,
             std::map<std::string, Sort> sorts)
      : UnaryNode(std::move(input)),
        formula_(std::move(formula)),
        sorts_(std::move(sorts)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    calculus::Env env = RowToEnv(row, sorts_);
    SGMLQDB_ASSIGN_OR_RETURN(
        bool ok, calculus::CheckFormulaInEnv(*ctx.calculus, *formula_, env));
    if (ok) out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "Filter " + formula_->ToString();
  }

 private:
  calculus::FormulaPtr formula_;
  std::map<std::string, Sort> sorts_;
};

class UnionAllNode : public Node {
 public:
  explicit UnionAllNode(std::vector<PlanPtr> inputs) {
    children_ = std::move(inputs);
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    for (const PlanPtr& c : children_) {
      SGMLQDB_RETURN_IF_ERROR(c->Execute(ctx, out));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return "UnionAll (" + std::to_string(children_.size()) + " branches)";
  }
};

/// Projects a row onto columns (missing columns are skipped).
Row ProjectRow(const Row& row, const std::vector<std::string>& cols) {
  Row out;
  for (const std::string& c : cols) {
    auto it = row.find(c);
    if (it != row.end()) out[c] = it->second;
  }
  return out;
}

class AntiSemiJoinNode : public Node {
 public:
  AntiSemiJoinNode(PlanPtr left, PlanPtr right,
                   std::vector<std::string> cols)
      : cols_(std::move(cols)) {
    children_ = {std::move(left), std::move(right)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> left, right;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &left));
    SGMLQDB_RETURN_IF_ERROR(children_[1]->Execute(ctx, &right));
    std::set<Value> keys;
    for (const Row& r : right) {
      keys.insert(RowKey(ProjectRow(r, cols_)));
    }
    for (Row& r : left) {
      if (keys.count(RowKey(ProjectRow(r, cols_))) == 0) {
        out->push_back(std::move(r));
      }
    }
    return Status::OK();
  }

  std::string Describe() const override {
    std::string out = "AntiSemiJoin on (";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i > 0) out += ", ";
      out += cols_[i];
    }
    return out + ")";
  }

 private:
  static Value RowKey(const Row& row) {
    std::vector<std::pair<std::string, Value>> fields;
    for (const auto& [k, v] : row) fields.emplace_back(k, v);
    return Value::Tuple(std::move(fields));
  }

  std::vector<std::string> cols_;
};

class CrossProductNode : public Node {
 public:
  CrossProductNode(PlanPtr left, PlanPtr right) {
    children_ = {std::move(left), std::move(right)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> left, right;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &left));
    SGMLQDB_RETURN_IF_ERROR(children_[1]->Execute(ctx, &right));
    for (const Row& l : left) {
      for (const Row& r : right) {
        Row merged = l;
        for (const auto& [k, v] : r) merged[k] = v;
        out->push_back(std::move(merged));
      }
    }
    return Status::OK();
  }

  std::string Describe() const override { return "CrossProduct"; }
};

class ProjectNode : public UnaryNode {
 public:
  ProjectNode(PlanPtr input, std::vector<std::string> cols)
      : UnaryNode(std::move(input)), cols_(std::move(cols)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    out->push_back(ProjectRow(row, cols_));
    return Status::OK();
  }

  std::string Describe() const override {
    std::string out = "Project (";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i > 0) out += ", ";
      out += cols_[i];
    }
    return out + ")";
  }

 private:
  std::vector<std::string> cols_;
};

class DistinctNode : public Node {
 public:
  explicit DistinctNode(PlanPtr input) { children_ = {std::move(input)}; }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    std::set<Value> seen;
    for (Row& row : in) {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& [k, v] : row) fields.emplace_back(k, v);
      Value key = Value::Tuple(std::move(fields));
      if (seen.insert(std::move(key)).second) {
        out->push_back(std::move(row));
      }
    }
    return Status::OK();
  }

  std::string Describe() const override { return "Distinct"; }
};

}  // namespace

std::string PlanToString(const PlanPtr& plan) {
  std::string out;
  std::function<void(const PlanPtr&, int)> walk = [&](const PlanPtr& node,
                                                      int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += node->Describe();
    out += '\n';
    for (const PlanPtr& c : node->children()) walk(c, depth + 1);
  };
  walk(plan, 0);
  return out;
}

calculus::Env RowToEnv(const Row& row,
                       const std::map<std::string, calculus::Sort>& sorts) {
  calculus::Env env;
  for (const auto& [col, value] : row) {
    auto it = sorts.find(col);
    Sort sort = it == sorts.end() ? Sort::kData : it->second;
    switch (sort) {
      case Sort::kData:
        env.data[col] = value;
        break;
      case Sort::kPath: {
        Result<Path> p = Path::FromValue(value);
        if (p.ok()) env.paths[col] = std::move(p).value();
        break;
      }
      case Sort::kAttr:
        if (value.kind() == ValueKind::kString) {
          env.attrs[col] = value.AsString();
        }
        break;
    }
  }
  return env;
}

PlanPtr RootScan(std::string root_name, std::string col) {
  return std::make_shared<RootScanNode>(std::move(root_name),
                                        std::move(col));
}
PlanPtr Unit() { return std::make_shared<UnitNode>(); }
PlanPtr AttrStep(PlanPtr input, std::string col, std::string attr,
                 std::string out, std::string path_col) {
  return std::make_shared<AttrStepNode>(std::move(input), std::move(col),
                                        std::move(attr), std::move(out),
                                        std::move(path_col));
}
PlanPtr DerefStep(PlanPtr input, std::string col, std::string out,
                  std::string path_col) {
  return std::make_shared<DerefStepNode>(std::move(input), std::move(col),
                                         std::move(out),
                                         std::move(path_col));
}
PlanPtr ClassFilter(PlanPtr input, std::string col, std::string class_name) {
  return std::make_shared<ClassFilterNode>(std::move(input), std::move(col),
                                           std::move(class_name));
}
PlanPtr UnnestList(PlanPtr input, std::string col, std::string out,
                   std::string pos_col, std::string path_col) {
  return std::make_shared<UnnestListNode>(std::move(input), std::move(col),
                                          std::move(out), std::move(pos_col),
                                          std::move(path_col));
}
PlanPtr IndexStep(PlanPtr input, std::string col, int64_t index,
                  std::string out, std::string path_col) {
  return std::make_shared<IndexStepNode>(std::move(input), std::move(col),
                                         index, std::move(out),
                                         std::move(path_col));
}
PlanPtr UnnestSet(PlanPtr input, std::string col, std::string out,
                  std::string path_col) {
  return std::make_shared<UnnestSetNode>(std::move(input), std::move(col),
                                         std::move(out),
                                         std::move(path_col));
}
PlanPtr ConstCol(PlanPtr input, std::string out, om::Value value) {
  return std::make_shared<ConstColNode>(std::move(input), std::move(out),
                                        std::move(value));
}
PlanPtr EmptyPathCol(PlanPtr input, std::string out) {
  return std::make_shared<ConstColNode>(std::move(input), std::move(out),
                                        Path().ToValue());
}
PlanPtr BindOrCheck(PlanPtr input, std::string src, std::string dst) {
  return std::make_shared<BindOrCheckNode>(std::move(input), std::move(src),
                                           std::move(dst));
}
PlanPtr Compute(PlanPtr input, std::string out, calculus::DataTermPtr term,
                const std::map<std::string, calculus::Sort>& sorts) {
  return std::make_shared<ComputeNode>(std::move(input), std::move(out),
                                       std::move(term), sorts);
}
PlanPtr Filter(PlanPtr input, calculus::FormulaPtr formula,
               const std::map<std::string, calculus::Sort>& sorts) {
  return std::make_shared<FilterNode>(std::move(input), std::move(formula),
                                      sorts);
}
PlanPtr UnionAll(std::vector<PlanPtr> inputs) {
  return std::make_shared<UnionAllNode>(std::move(inputs));
}
PlanPtr AntiSemiJoin(PlanPtr left, PlanPtr right,
                     std::vector<std::string> cols) {
  return std::make_shared<AntiSemiJoinNode>(std::move(left), std::move(right),
                                            std::move(cols));
}
PlanPtr CrossProduct(PlanPtr left, PlanPtr right) {
  return std::make_shared<CrossProductNode>(std::move(left),
                                            std::move(right));
}
PlanPtr Project(PlanPtr input, std::vector<std::string> cols) {
  return std::make_shared<ProjectNode>(std::move(input), std::move(cols));
}
PlanPtr Distinct(PlanPtr input) {
  return std::make_shared<DistinctNode>(std::move(input));
}

}  // namespace sgmlqdb::algebra
