#include "algebra/ops.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <unordered_set>

#include "algebra/exchange.h"
#include "base/exec_guard.h"
#include "text/index.h"
#include "text/query_cache.h"

namespace sgmlqdb::algebra {

using calculus::DataTerm;
using calculus::Sort;
using om::Value;
using om::ValueKind;
using path::Path;
using path::PathStep;

Result<std::shared_ptr<const std::vector<Row>>> Memo::GetOrCompute(
    const Node& node, const ExecContext& ctx) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[&node];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }
  // The entry lock is held across the compute so a concurrent reader
  // of the same prefix blocks instead of recomputing. Plans are DAGs,
  // so nested GetOrCompute calls only ever take locks of descendant
  // entries — no cycles, no deadlock.
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->done) {
    auto rows = std::make_shared<std::vector<Row>>();
    entry->status = node.Execute(ctx, rows.get());
    entry->rows = std::move(rows);
    entry->done = true;
  }
  if (!entry->status.ok()) return entry->status;
  return entry->rows;
}

size_t Memo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status Node::ExecuteShared(const ExecContext& ctx,
                           std::vector<Row>* out) const {
  SGMLQDB_ASSIGN_OR_RETURN(auto rows, ExecuteSharedRows(ctx));
  out->reserve(out->size() + rows->size());
  out->insert(out->end(), rows->begin(), rows->end());
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<Row>>> Node::ExecuteSharedRows(
    const ExecContext& ctx) const {
  return ctx.memo->GetOrCompute(*this, ctx);
}

namespace {

/// Runs `child`, memoizing when it is a shared union-branch prefix.
Status ExecuteChild(const PlanPtr& child, const ExecContext& ctx,
                    std::vector<Row>* out) {
  if (child.use_count() > 1) return child->ExecuteShared(ctx, out);
  return child->Execute(ctx, out);
}

/// Cooperative limit probe at operator iteration boundaries. The same
/// guard is shared by every branch of a parallel union (via the shared
/// EvalContext), so one tripped branch stops its siblings.
Status GuardProbe(const ExecContext& ctx) {
  ExecGuard* guard = ctx.calculus->guard;
  if (guard == nullptr) return Status::OK();
  return guard->Probe();
}

/// Charges `n` materialized rows against the statement's row budget.
Status GuardCountRows(const ExecContext& ctx, size_t n) {
  ExecGuard* guard = ctx.calculus->guard;
  if (guard == nullptr) return Status::OK();
  return guard->CountRows(n);
}

/// Appends a step to a path column (stored as a path value).
Result<Value> AppendToPathCol(const Value& current, PathStep step) {
  SGMLQDB_ASSIGN_OR_RETURN(Path p, Path::FromValue(current));
  return p.Append(std::move(step)).ToValue();
}

Status ExtendPath(Row* row, const std::string& path_col, PathStep step) {
  if (path_col.empty()) return Status::OK();
  auto it = row->find(path_col);
  Value current =
      it == row->end() ? Path().ToValue() : it->second;
  SGMLQDB_ASSIGN_OR_RETURN(Value next, AppendToPathCol(current, step));
  (*row)[path_col] = std::move(next);
  return Status::OK();
}

/// Adds `col` to `out` unless empty.
void AddCol(std::vector<std::string>* out, const std::string& col) {
  if (!col.empty()) out->push_back(col);
}

class RootScanNode : public Node {
 public:
  RootScanNode(std::string root, std::string col)
      : root_(std::move(root)), col_(std::move(col)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    SGMLQDB_ASSIGN_OR_RETURN(Value v, ctx.db()->LookupName(root_));
    Row row;
    row[col_] = std::move(v);
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "RootScan " + root_ + " -> " + col_;
  }

  NodeKind kind() const override { return NodeKind::kRootScan; }

  PlanPtr WithChildren(std::vector<PlanPtr>) const override {
    return std::make_shared<RootScanNode>(root_, col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {col_};
  }

  const std::string* root_name() const override { return &root_; }

 private:
  std::string root_;
  std::string col_;
};

class UnitNode : public Node {
 public:
  Status Execute(const ExecContext&, std::vector<Row>* out) const override {
    out->push_back(Row{});
    return Status::OK();
  }
  std::string Describe() const override { return "Unit"; }
  NodeKind kind() const override { return NodeKind::kUnit; }
  PlanPtr WithChildren(std::vector<PlanPtr>) const override {
    return std::make_shared<UnitNode>();
  }
};

/// Shared base for per-row transforms.
class UnaryNode : public Node {
 public:
  explicit UnaryNode(PlanPtr input) { children_ = {std::move(input)}; }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    const size_t before = out->size();
    if (children_[0].use_count() > 1) {
      // Shared prefix: iterate the memoized rows in place — no
      // per-parent copy of the cached vector.
      SGMLQDB_ASSIGN_OR_RETURN(auto rows,
                               children_[0]->ExecuteSharedRows(ctx));
      out->reserve(out->size() + rows->size());
      for (const Row& row : *rows) {
        SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
        SGMLQDB_RETURN_IF_ERROR(Transform(ctx, row, out));
      }
      return GuardCountRows(ctx, out->size() - before);
    }
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    out->reserve(out->size() + in.size());
    for (Row& row : in) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      SGMLQDB_RETURN_IF_ERROR(Transform(ctx, std::move(row), out));
    }
    return GuardCountRows(ctx, out->size() - before);
  }

  virtual Status Transform(const ExecContext& ctx, Row row,
                           std::vector<Row>* out) const = 0;
};

class AttrStepNode : public UnaryNode {
 public:
  AttrStepNode(PlanPtr input, std::string col, std::string attr,
               std::string out, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        attr_(std::move(attr)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kTuple) {
      return Status::OK();  // implicit selector: drop
    }
    std::optional<Value> f = it->second.FindField(attr_);
    if (!f.has_value()) return Status::OK();  // drop (variant select)
    row[out_] = *f;
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_,
                                       PathStep::Attr(attr_)));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "AttrStep " + col_ + " ." + attr_ + " -> " + out_;
  }

  NodeKind kind() const override { return NodeKind::kAttrStep; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<AttrStepNode>(std::move(children[0]), col_,
                                          attr_, out_, path_col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    std::vector<std::string> out = {out_};
    AddCol(&out, path_col_);
    return out;
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = col_;
    *out = out_;
    return true;
  }

 private:
  std::string col_, attr_, out_, path_col_;
};

class DerefStepNode : public UnaryNode {
 public:
  DerefStepNode(PlanPtr input, std::string col, std::string out,
                std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kObject) {
      return Status::OK();
    }
    Result<Value> v = ctx.db()->Deref(it->second.AsObject());
    if (!v.ok()) return Status::OK();  // dangling: drop
    row[out_] = std::move(v).value();
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_, PathStep::Deref()));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "DerefStep " + col_ + " -> " + out_;
  }

  NodeKind kind() const override { return NodeKind::kDerefStep; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<DerefStepNode>(std::move(children[0]), col_,
                                           out_, path_col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    std::vector<std::string> out = {out_};
    AddCol(&out, path_col_);
    return out;
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = col_;
    *out = out_;
    return true;
  }

 private:
  std::string col_, out_, path_col_;
};

class ClassFilterNode : public UnaryNode {
 public:
  ClassFilterNode(PlanPtr input, std::string col, std::string class_name)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        class_(std::move(class_name)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kObject) {
      return Status::OK();
    }
    const std::string* cls = ctx.db()->ClassOf(it->second.AsObject());
    if (cls == nullptr || !ctx.db()->schema().IsSubclassOf(*cls, class_)) {
      return Status::OK();
    }
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "ClassFilter " + col_ + " : " + class_;
  }

  NodeKind kind() const override { return NodeKind::kClassFilter; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ClassFilterNode>(std::move(children[0]), col_,
                                             class_);
  }

 private:
  std::string col_, class_;
};

class UnnestListNode : public UnaryNode {
 public:
  UnnestListNode(PlanPtr input, std::string col, std::string out,
                 std::string pos_col, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        pos_col_(std::move(pos_col)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end()) return Status::OK();
    // Ordered tuples are also heterogeneous lists (§4.4).
    Value list = it->second.kind() == ValueKind::kTuple
                     ? it->second.AsHeterogeneousList()
                     : it->second;
    if (list.kind() != ValueKind::kList) return Status::OK();
    out->reserve(out->size() + list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      Row r = row;
      r[out_] = list.Element(i);
      if (!pos_col_.empty()) {
        r[pos_col_] = Value::Integer(static_cast<int64_t>(i));
      }
      SGMLQDB_RETURN_IF_ERROR(ExtendPath(
          &r, path_col_, PathStep::Index(static_cast<int64_t>(i))));
      out->push_back(std::move(r));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return "UnnestList " + col_ + " -> " + out_;
  }

  NodeKind kind() const override { return NodeKind::kUnnestList; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<UnnestListNode>(std::move(children[0]), col_,
                                            out_, pos_col_, path_col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    std::vector<std::string> out = {out_};
    AddCol(&out, pos_col_);
    AddCol(&out, path_col_);
    return out;
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = col_;
    *out = out_;
    return true;
  }

 private:
  std::string col_, out_, pos_col_, path_col_;
};

class IndexStepNode : public UnaryNode {
 public:
  IndexStepNode(PlanPtr input, std::string col, int64_t index,
                std::string out, std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        index_(index),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end()) return Status::OK();
    Value list = it->second.kind() == ValueKind::kTuple
                     ? it->second.AsHeterogeneousList()
                     : it->second;
    if (list.kind() != ValueKind::kList || index_ < 0 ||
        static_cast<size_t>(index_) >= list.size()) {
      return Status::OK();
    }
    row[out_] = list.Element(static_cast<size_t>(index_));
    SGMLQDB_RETURN_IF_ERROR(ExtendPath(&row, path_col_,
                                       PathStep::Index(index_)));
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "IndexStep " + col_ + "[" + std::to_string(index_) + "] -> " +
           out_;
  }

  NodeKind kind() const override { return NodeKind::kIndexStep; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<IndexStepNode>(std::move(children[0]), col_,
                                           index_, out_, path_col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    std::vector<std::string> out = {out_};
    AddCol(&out, path_col_);
    return out;
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = col_;
    *out = out_;
    return true;
  }

 private:
  std::string col_;
  int64_t index_;
  std::string out_, path_col_;
};

class UnnestSetNode : public UnaryNode {
 public:
  UnnestSetNode(PlanPtr input, std::string col, std::string out,
                std::string path_col)
      : UnaryNode(std::move(input)),
        col_(std::move(col)),
        out_(std::move(out)),
        path_col_(std::move(path_col)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(col_);
    if (it == row.end() || it->second.kind() != ValueKind::kSet) {
      return Status::OK();
    }
    Value set = it->second;
    out->reserve(out->size() + set.size());
    for (size_t i = 0; i < set.size(); ++i) {
      Row r = row;
      r[out_] = set.Element(i);
      SGMLQDB_RETURN_IF_ERROR(
          ExtendPath(&r, path_col_, PathStep::SetElem(set.Element(i))));
      out->push_back(std::move(r));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return "UnnestSet " + col_ + " -> " + out_;
  }

  NodeKind kind() const override { return NodeKind::kUnnestSet; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<UnnestSetNode>(std::move(children[0]), col_,
                                           out_, path_col_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    std::vector<std::string> out = {out_};
    AddCol(&out, path_col_);
    return out;
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = col_;
    *out = out_;
    return true;
  }

 private:
  std::string col_, out_, path_col_;
};

class ConstColNode : public UnaryNode {
 public:
  ConstColNode(PlanPtr input, std::string out, Value value)
      : UnaryNode(std::move(input)),
        out_(std::move(out)),
        value_(std::move(value)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    row[out_] = value_;
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "ConstCol " + out_ + " = " + value_.ToString();
  }

  NodeKind kind() const override { return NodeKind::kConstCol; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ConstColNode>(std::move(children[0]), out_,
                                          value_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {out_};
  }

 private:
  std::string out_;
  Value value_;
};

class BindOrCheckNode : public UnaryNode {
 public:
  BindOrCheckNode(PlanPtr input, std::string src, std::string dst)
      : UnaryNode(std::move(input)), src_(std::move(src)),
        dst_(std::move(dst)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    auto it = row.find(src_);
    if (it == row.end()) return Status::OK();
    auto existing = row.find(dst_);
    if (existing != row.end()) {
      if (existing->second != it->second) return Status::OK();
    } else {
      row[dst_] = it->second;
    }
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "BindOrCheck " + src_ + " -> " + dst_;
  }

  NodeKind kind() const override { return NodeKind::kBindOrCheck; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<BindOrCheckNode>(std::move(children[0]), src_,
                                             dst_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {dst_};
  }

  bool NavColumns(std::string* in, std::string* out) const override {
    *in = src_;
    *out = dst_;
    return true;
  }

 private:
  std::string src_, dst_;
};

class ComputeNode : public UnaryNode {
 public:
  ComputeNode(PlanPtr input, std::string out, calculus::DataTermPtr term,
              std::map<std::string, Sort> sorts)
      : UnaryNode(std::move(input)),
        out_(std::move(out)),
        term_(std::move(term)),
        sorts_(std::move(sorts)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    calculus::Env env = RowToEnv(row, sorts_);
    Result<Value> v =
        calculus::EvaluateClosedTermInEnv(*ctx.calculus, *term_, env);
    if (!v.ok()) {
      if (v.status().code() == StatusCode::kNotFound ||
          v.status().code() == StatusCode::kTypeError) {
        return Status::OK();  // soft failure: drop row
      }
      return v.status();
    }
    row[out_] = std::move(v).value();
    out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "Compute " + out_ + " = " + term_->ToString();
  }

  NodeKind kind() const override { return NodeKind::kCompute; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ComputeNode>(std::move(children[0]), out_,
                                         term_, sorts_);
  }

  std::vector<std::string> IntroducedColumns() const override {
    return {out_};
  }

  const DataTerm* compute_term() const override { return term_.get(); }

 private:
  std::string out_;
  calculus::DataTermPtr term_;
  std::map<std::string, Sort> sorts_;
};

/// Column names a formula's predicate reads (all three sorts live in
/// row columns).
std::vector<std::string> FormulaColumns(const calculus::Formula& f) {
  std::vector<std::string> out;
  for (const calculus::Variable& v : f.FreeVariables()) {
    out.push_back(v.name);
  }
  return out;
}

std::vector<std::string> TermColumns(const DataTerm& term) {
  std::set<calculus::Variable> vars;
  calculus::CollectVariables(term, &vars);
  std::vector<std::string> out;
  for (const calculus::Variable& v : vars) out.push_back(v.name);
  return out;
}

class FilterNode : public UnaryNode {
 public:
  FilterNode(PlanPtr input, calculus::FormulaPtr formula,
             std::map<std::string, Sort> sorts)
      : UnaryNode(std::move(input)),
        formula_(std::move(formula)),
        sorts_(std::move(sorts)) {}

  Status Transform(const ExecContext& ctx, Row row,
                   std::vector<Row>* out) const override {
    calculus::Env env = RowToEnv(row, sorts_);
    SGMLQDB_ASSIGN_OR_RETURN(
        bool ok, calculus::CheckFormulaInEnv(*ctx.calculus, *formula_, env));
    if (ok) out->push_back(std::move(row));
    return Status::OK();
  }

  std::string Describe() const override {
    return "Filter " + formula_->ToString();
  }

  NodeKind kind() const override { return NodeKind::kFilter; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<FilterNode>(std::move(children[0]), formula_,
                                        sorts_);
  }

  std::vector<std::string> RequiredColumns() const override {
    return FormulaColumns(*formula_);
  }

  const calculus::Formula* filter_formula() const override {
    return formula_.get();
  }
  const std::map<std::string, Sort>* filter_sorts() const override {
    return &sorts_;
  }

 private:
  calculus::FormulaPtr formula_;
  std::map<std::string, Sort> sorts_;
};

// ---------------------------------------------------------------------
// Index-assisted text predicates.

/// True when `term` is a shape the index joins can evaluate without
/// building a calculus environment: a data variable, a constant, or
/// `__select_attr` / `text` chains over such.
bool FastEvalSupported(const DataTerm& term,
                       const std::map<std::string, Sort>& sorts) {
  switch (term.kind()) {
    case DataTerm::Kind::kVariable: {
      auto it = sorts.find(term.var_name());
      return it == sorts.end() || it->second == Sort::kData;
    }
    case DataTerm::Kind::kConstant:
      return true;
    case DataTerm::Kind::kFunction: {
      const std::string& fn = term.function_name();
      if (fn == "__select_attr") {
        return term.children().size() == 2 &&
               term.children()[1]->kind() == DataTerm::Kind::kConstant &&
               term.children()[1]->constant().kind() == ValueKind::kString &&
               FastEvalSupported(*term.children()[0], sorts);
      }
      if (fn == "text") {
        return term.children().size() == 1 &&
               FastEvalSupported(*term.children()[0], sorts);
      }
      return false;
    }
    default:
      return false;
  }
}

/// Evaluates a FastEvalSupported term against a row, mirroring the
/// calculus evaluator exactly (soft failures included).
Result<Value> FastEval(const DataTerm& term, const calculus::EvalContext& cc,
                       const Row& row) {
  switch (term.kind()) {
    case DataTerm::Kind::kVariable: {
      auto it = row.find(term.var_name());
      if (it == row.end()) {
        return Status::Internal("unbound data variable " + term.var_name());
      }
      return it->second;
    }
    case DataTerm::Kind::kConstant:
      return term.constant();
    default: {
      SGMLQDB_ASSIGN_OR_RETURN(Value base,
                               FastEval(*term.children()[0], cc, row));
      if (term.function_name() == "__select_attr") {
        return calculus::SelectAttrValue(
            cc, base, term.children()[1]->constant().AsString());
      }
      return calculus::TextOfValue(cc, base);
    }
  }
}

class IndexSemiJoinNode : public UnaryNode {
 public:
  IndexSemiJoinNode(PlanPtr input, calculus::DataTermPtr term,
                    std::string pattern_text, text::Pattern pattern,
                    std::map<std::string, Sort> sorts, bool object_only)
      : UnaryNode(std::move(input)),
        term_(std::move(term)),
        pattern_text_(std::move(pattern_text)),
        pattern_(std::move(pattern)),
        sorts_(std::move(sorts)),
        object_only_(object_only),
        fast_eval_(FastEvalSupported(*term_, sorts_)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    const calculus::EvalContext& cc = *ctx.calculus;
    // Resolve the pattern + candidate set once per execution (the
    // whole point: the naive filter re-parses per row).
    const text::Pattern* pattern = &pattern_;
    std::shared_ptr<const text::TextQueryCache::ContainsEntry> entry;
    std::shared_ptr<const std::unordered_set<text::UnitId>> local;
    const std::unordered_set<text::UnitId>* candidates = nullptr;
    bool exact = false;
    if (cc.text_cache != nullptr) {
      SGMLQDB_ASSIGN_OR_RETURN(
          entry, cc.text_cache->Contains(cc.text_index, pattern_text_,
                                         cc.text_epoch));
      pattern = &entry->pattern;
      candidates = entry->candidates.get();
      exact = entry->exact;
    } else if (cc.text_index != nullptr) {
      bool ex = false;
      std::vector<text::UnitId> units =
          cc.text_index->Candidates(pattern_, &ex);
      local = std::make_shared<const std::unordered_set<text::UnitId>>(
          units.begin(), units.end());
      candidates = local.get();
      exact = ex;
    }
    if (object_only_ && candidates != nullptr && candidates->empty()) {
      // Every row's text value is an indexed element and none can
      // match: skip the input subplan entirely.
      return Status::OK();
    }
    const size_t before = out->size();
    if (children_[0].use_count() > 1) {
      SGMLQDB_ASSIGN_OR_RETURN(auto rows,
                               children_[0]->ExecuteSharedRows(ctx));
      for (const Row& row : *rows) {
        SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
        SGMLQDB_ASSIGN_OR_RETURN(
            bool keep, KeepRow(cc, row, *pattern, candidates, exact));
        if (keep) out->push_back(row);
      }
      return GuardCountRows(ctx, out->size() - before);
    }
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    for (Row& row : in) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      SGMLQDB_ASSIGN_OR_RETURN(
          bool keep, KeepRow(cc, row, *pattern, candidates, exact));
      if (keep) out->push_back(std::move(row));
    }
    return GuardCountRows(ctx, out->size() - before);
  }

  Status Transform(const ExecContext&, Row, std::vector<Row>*) const override {
    return Status::Internal("IndexSemiJoin executes whole inputs");
  }

  std::string Describe() const override {
    return "IndexSemiJoin " + term_->ToString() + " contains \"" +
           pattern_text_ + "\"" + (object_only_ ? " [object]" : "");
  }

  NodeKind kind() const override { return NodeKind::kIndexSemiJoin; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<IndexSemiJoinNode>(std::move(children[0]), term_,
                                               pattern_text_, pattern_,
                                               sorts_, object_only_);
  }

  std::vector<std::string> RequiredColumns() const override {
    return TermColumns(*term_);
  }

  const std::string* index_contains_pattern() const override {
    return object_only_ ? &pattern_text_ : nullptr;
  }

  const calculus::DataTerm* index_term() const override {
    return term_.get();
  }

 private:
  Result<bool> KeepRow(const calculus::EvalContext& cc, const Row& row,
                       const text::Pattern& pattern,
                       const std::unordered_set<text::UnitId>* candidates,
                       bool exact) const {
    Result<Value> v =
        fast_eval_
            ? FastEval(*term_, cc, row)
            : calculus::EvaluateClosedTermInEnv(cc, *term_,
                                                RowToEnv(row, sorts_));
    if (!v.ok()) {
      if (v.status().code() == StatusCode::kNotFound ||
          v.status().code() == StatusCode::kTypeError) {
        return false;  // soft failure: the atom is false (§5.3)
      }
      return v.status();
    }
    if (v->kind() == ValueKind::kObject && candidates != nullptr) {
      if (candidates->count(v->AsObject().id()) == 0) return false;
      if (exact) return true;
    }
    Result<Value> text = calculus::TextOfValue(cc, *v);
    if (!text.ok()) {
      if (text.status().code() == StatusCode::kNotFound ||
          text.status().code() == StatusCode::kTypeError) {
        return false;
      }
      return text.status();
    }
    return pattern.Matches(text->AsString());
  }

  calculus::DataTermPtr term_;
  std::string pattern_text_;
  text::Pattern pattern_;
  std::map<std::string, Sort> sorts_;
  bool object_only_;
  bool fast_eval_;
};

class IndexNearJoinNode : public UnaryNode {
 public:
  IndexNearJoinNode(PlanPtr input, calculus::DataTermPtr term,
                    std::string word1, std::string word2,
                    size_t max_distance, std::map<std::string, Sort> sorts,
                    bool object_only)
      : UnaryNode(std::move(input)),
        term_(std::move(term)),
        word1_(std::move(word1)),
        word2_(std::move(word2)),
        max_distance_(max_distance),
        sorts_(std::move(sorts)),
        object_only_(object_only),
        fast_eval_(FastEvalSupported(*term_, sorts_)),
        plain_words_(text::IsPlainSingleWord(word1_) &&
                     text::IsPlainSingleWord(word2_)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    const calculus::EvalContext& cc = *ctx.calculus;
    // For plain words the positional index answers objects exactly.
    std::shared_ptr<const std::unordered_set<text::UnitId>> units;
    if (plain_words_ && cc.text_index != nullptr) {
      if (cc.text_cache != nullptr) {
        units = cc.text_cache->NearUnits(*cc.text_index, word1_, word2_,
                                         max_distance_, cc.text_epoch);
      } else {
        std::vector<text::UnitId> u =
            cc.text_index->NearLookup(word1_, word2_, max_distance_);
        units = std::make_shared<const std::unordered_set<text::UnitId>>(
            u.begin(), u.end());
      }
    }
    if (object_only_ && units != nullptr && units->empty()) {
      return Status::OK();
    }
    const size_t before = out->size();
    if (children_[0].use_count() > 1) {
      SGMLQDB_ASSIGN_OR_RETURN(auto rows,
                               children_[0]->ExecuteSharedRows(ctx));
      for (const Row& row : *rows) {
        SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
        SGMLQDB_ASSIGN_OR_RETURN(bool keep, KeepRow(cc, row, units.get()));
        if (keep) out->push_back(row);
      }
      return GuardCountRows(ctx, out->size() - before);
    }
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    for (Row& row : in) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      SGMLQDB_ASSIGN_OR_RETURN(bool keep, KeepRow(cc, row, units.get()));
      if (keep) out->push_back(std::move(row));
    }
    return GuardCountRows(ctx, out->size() - before);
  }

  Status Transform(const ExecContext&, Row, std::vector<Row>*) const override {
    return Status::Internal("IndexNearJoin executes whole inputs");
  }

  std::string Describe() const override {
    return "IndexNearJoin " + term_->ToString() + " near(\"" + word1_ +
           "\", \"" + word2_ + "\", " + std::to_string(max_distance_) + ")" +
           (object_only_ ? " [object]" : "");
  }

  NodeKind kind() const override { return NodeKind::kIndexNearJoin; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<IndexNearJoinNode>(std::move(children[0]), term_,
                                               word1_, word2_, max_distance_,
                                               sorts_, object_only_);
  }

  std::vector<std::string> RequiredColumns() const override {
    return TermColumns(*term_);
  }

  bool index_near_words(std::string* w1, std::string* w2,
                        size_t* k) const override {
    if (!object_only_ || !plain_words_) return false;
    *w1 = word1_;
    *w2 = word2_;
    *k = max_distance_;
    return true;
  }

  const calculus::DataTerm* index_term() const override {
    return term_.get();
  }

 private:
  Result<bool> KeepRow(const calculus::EvalContext& cc, const Row& row,
                       const std::unordered_set<text::UnitId>* units) const {
    Result<Value> v =
        fast_eval_
            ? FastEval(*term_, cc, row)
            : calculus::EvaluateClosedTermInEnv(cc, *term_,
                                                RowToEnv(row, sorts_));
    if (!v.ok()) {
      if (v.status().code() == StatusCode::kNotFound ||
          v.status().code() == StatusCode::kTypeError) {
        return false;
      }
      return v.status();
    }
    if (v->kind() == ValueKind::kObject && units != nullptr) {
      return units->count(v->AsObject().id()) > 0;
    }
    Result<Value> text = calculus::TextOfValue(cc, *v);
    if (!text.ok()) {
      if (text.status().code() == StatusCode::kNotFound ||
          text.status().code() == StatusCode::kTypeError) {
        return false;
      }
      return text.status();
    }
    return text::Near(text->AsString(), word1_, word2_, max_distance_);
  }

  calculus::DataTermPtr term_;
  std::string word1_, word2_;
  size_t max_distance_;
  std::map<std::string, Sort> sorts_;
  bool object_only_;
  bool fast_eval_;
  bool plain_words_;
};

/// Document-level index prefilter (see ops.h). Keeps rows whose
/// `doc_col` object was loaded in a document containing at least one
/// candidate unit; conservative pass-through for rows whose column is
/// missing / not an object / not a loaded unit, and for contexts
/// without an index or unit->doc map.
class IndexDocFilterNode : public UnaryNode {
 public:
  IndexDocFilterNode(PlanPtr input, std::string doc_col,
                     std::string pattern_text,
                     std::optional<text::Pattern> pattern,
                     std::string word1, std::string word2,
                     size_t max_distance, std::string term_class)
      : UnaryNode(std::move(input)),
        doc_col_(std::move(doc_col)),
        pattern_text_(std::move(pattern_text)),
        pattern_(std::move(pattern)),
        word1_(std::move(word1)),
        word2_(std::move(word2)),
        max_distance_(max_distance),
        term_class_(std::move(term_class)) {}

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    const calculus::EvalContext& cc = *ctx.calculus;
    std::shared_ptr<const std::unordered_set<uint64_t>> docs;
    if (cc.unit_docs != nullptr && cc.text_index != nullptr) {
      if (cc.text_cache != nullptr) {
        std::string key;
        if (pattern_.has_value()) {
          key = "c:" + term_class_ + ":" + pattern_text_;
        } else {
          key = "n:" + term_class_ + ":" + word1_ + "," + word2_ + "," +
                std::to_string(max_distance_);
        }
        docs = cc.text_cache->Docs(key, [&] { return BuildDocs(cc); },
                                   cc.text_epoch);
      } else {
        docs = std::make_shared<const std::unordered_set<uint64_t>>(
            BuildDocs(cc));
      }
    }
    const size_t before = out->size();
    if (children_[0].use_count() > 1) {
      SGMLQDB_ASSIGN_OR_RETURN(auto rows,
                               children_[0]->ExecuteSharedRows(ctx));
      for (const Row& row : *rows) {
        SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
        if (docs == nullptr || KeepRow(cc, row, *docs)) out->push_back(row);
      }
      return GuardCountRows(ctx, out->size() - before);
    }
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(children_[0]->Execute(ctx, &in));
    for (Row& row : in) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      if (docs == nullptr || KeepRow(cc, row, *docs)) {
        out->push_back(std::move(row));
      }
    }
    return GuardCountRows(ctx, out->size() - before);
  }

  Status Transform(const ExecContext&, Row, std::vector<Row>*) const override {
    return Status::Internal("IndexDocFilter executes whole inputs");
  }

  std::string Describe() const override {
    std::string cls =
        term_class_.empty() ? std::string() : " [" + term_class_ + "]";
    if (pattern_.has_value()) {
      return "IndexDocFilter " + doc_col_ + " ~ contains \"" +
             pattern_text_ + "\"" + cls;
    }
    return "IndexDocFilter " + doc_col_ + " ~ near(\"" + word1_ + "\", \"" +
           word2_ + "\", " + std::to_string(max_distance_) + ")" + cls;
  }

  NodeKind kind() const override { return NodeKind::kIndexDocFilter; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<IndexDocFilterNode>(
        std::move(children[0]), doc_col_, pattern_text_, pattern_, word1_,
        word2_, max_distance_, term_class_);
  }

  std::vector<std::string> RequiredColumns() const override {
    return {doc_col_};
  }

 private:
  /// The document-id set for this predicate: candidate units from the
  /// index, class-restricted when the downstream join's term is
  /// statically classed (only such units can be the term's value),
  /// mapped to their loading documents. Runs once per (predicate,
  /// class, store snapshot) thanks to TextQueryCache::Docs.
  std::unordered_set<uint64_t> BuildDocs(
      const calculus::EvalContext& cc) const {
    std::vector<text::UnitId> units;
    if (pattern_.has_value()) {
      bool exact = false;
      units = cc.text_index->Candidates(*pattern_, &exact);
    } else {
      units = cc.text_index->NearLookup(word1_, word2_, max_distance_);
    }
    std::unordered_set<uint64_t> docs;
    for (text::UnitId u : units) AddDoc(cc, u, &docs);
    return docs;
  }

  void AddDoc(const calculus::EvalContext& cc, text::UnitId unit,
              std::unordered_set<uint64_t>* docs) const {
    if (!term_class_.empty() && cc.db != nullptr) {
      const std::string* cls = cc.db->ClassOf(om::ObjectId(unit));
      if (cls == nullptr ||
          !cc.db->schema().IsSubclassOf(*cls, term_class_)) {
        return;
      }
    }
    auto it = cc.unit_docs->find(unit);
    if (it != cc.unit_docs->end()) docs->insert(it->second);
  }

  bool KeepRow(const calculus::EvalContext& cc, const Row& row,
               const std::unordered_set<uint64_t>& docs) const {
    auto it = row.find(doc_col_);
    if (it == row.end() || it->second.kind() != ValueKind::kObject) {
      return true;
    }
    auto doc = cc.unit_docs->find(it->second.AsObject().id());
    if (doc == cc.unit_docs->end()) return true;
    return docs.count(doc->second) > 0;
  }

  std::string doc_col_;
  // Contains form when pattern_ is set; near form otherwise.
  std::string pattern_text_;
  std::optional<text::Pattern> pattern_;
  std::string word1_, word2_;
  size_t max_distance_;
  // Non-empty: only candidate units of this class (or a subclass)
  // contribute documents.
  std::string term_class_;
};

class UnionAllNode : public Node {
 public:
  explicit UnionAllNode(std::vector<PlanPtr> inputs) {
    children_ = std::move(inputs);
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    // The union is an exchange over its branches: serial execution
    // appends child rows straight to `out`; with a branch executor a
    // multi-branch union scatters, gathers, and concatenates in
    // branch order. One fan-out level: the scattered branches share
    // the memo (thread-safe) but do not re-fan nested unions.
    ExchangeOperator exchange(ctx.branch_executor);
    if (!exchange.parallel_for(children_.size())) {
      for (const PlanPtr& c : children_) {
        SGMLQDB_RETURN_IF_ERROR(ExecuteChild(c, ctx, out));
      }
      return Status::OK();
    }
    ExecContext branch_ctx = ctx;
    branch_ctx.branch_executor = nullptr;
    return exchange.GatherRows(
        children_.size(),
        [&](size_t i, std::vector<Row>* part) {
          return ExecuteChild(children_[i], branch_ctx, part);
        },
        out);
  }

  std::string Describe() const override {
    return "UnionAll (" + std::to_string(children_.size()) + " branches)";
  }

  NodeKind kind() const override { return NodeKind::kUnionAll; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<UnionAllNode>(std::move(children));
  }
};

/// Projects a row onto columns (missing columns are skipped).
Row ProjectRow(const Row& row, const std::vector<std::string>& cols) {
  Row out;
  for (const std::string& c : cols) {
    auto it = row.find(c);
    if (it != row.end()) out[c] = it->second;
  }
  return out;
}

class AntiSemiJoinNode : public Node {
 public:
  AntiSemiJoinNode(PlanPtr left, PlanPtr right,
                   std::vector<std::string> cols)
      : cols_(std::move(cols)) {
    children_ = {std::move(left), std::move(right)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> left, right;
    SGMLQDB_RETURN_IF_ERROR(ExecuteChild(children_[0], ctx, &left));
    SGMLQDB_RETURN_IF_ERROR(ExecuteChild(children_[1], ctx, &right));
    std::set<Value> keys;
    for (const Row& r : right) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      keys.insert(RowKey(ProjectRow(r, cols_)));
    }
    const size_t before = out->size();
    for (Row& r : left) {
      SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
      if (keys.count(RowKey(ProjectRow(r, cols_))) == 0) {
        out->push_back(std::move(r));
      }
    }
    return GuardCountRows(ctx, out->size() - before);
  }

  std::string Describe() const override {
    std::string out = "AntiSemiJoin on (";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i > 0) out += ", ";
      out += cols_[i];
    }
    return out + ")";
  }

  NodeKind kind() const override { return NodeKind::kAntiSemiJoin; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<AntiSemiJoinNode>(std::move(children[0]),
                                              std::move(children[1]), cols_);
  }

 private:
  static Value RowKey(const Row& row) {
    std::vector<std::pair<std::string, Value>> fields;
    for (const auto& [k, v] : row) fields.emplace_back(k, v);
    return Value::Tuple(std::move(fields));
  }

  std::vector<std::string> cols_;
};

class CrossProductNode : public Node {
 public:
  CrossProductNode(PlanPtr left, PlanPtr right) {
    children_ = {std::move(left), std::move(right)};
  }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> left, right;
    SGMLQDB_RETURN_IF_ERROR(ExecuteChild(children_[0], ctx, &left));
    SGMLQDB_RETURN_IF_ERROR(ExecuteChild(children_[1], ctx, &right));
    out->reserve(out->size() + left.size() * right.size());
    // The classic runaway shape (a bad plan's nested loop): probe and
    // charge the row budget per produced row, not per input row.
    for (const Row& l : left) {
      for (const Row& r : right) {
        SGMLQDB_RETURN_IF_ERROR(GuardProbe(ctx));
        Row merged = l;
        for (const auto& [k, v] : r) merged[k] = v;
        out->push_back(std::move(merged));
      }
    }
    return GuardCountRows(ctx, left.size() * right.size());
  }

  std::string Describe() const override { return "CrossProduct"; }

  NodeKind kind() const override { return NodeKind::kCrossProduct; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<CrossProductNode>(std::move(children[0]),
                                              std::move(children[1]));
  }
};

class ProjectNode : public UnaryNode {
 public:
  ProjectNode(PlanPtr input, std::vector<std::string> cols)
      : UnaryNode(std::move(input)), cols_(std::move(cols)) {}

  Status Transform(const ExecContext&, Row row,
                   std::vector<Row>* out) const override {
    out->push_back(ProjectRow(row, cols_));
    return Status::OK();
  }

  std::string Describe() const override {
    std::string out = "Project (";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i > 0) out += ", ";
      out += cols_[i];
    }
    return out + ")";
  }

  NodeKind kind() const override { return NodeKind::kProject; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ProjectNode>(std::move(children[0]), cols_);
  }

 private:
  std::vector<std::string> cols_;
};

class DistinctNode : public Node {
 public:
  explicit DistinctNode(PlanPtr input) { children_ = {std::move(input)}; }

  Status Execute(const ExecContext& ctx, std::vector<Row>* out) const override {
    std::vector<Row> in;
    SGMLQDB_RETURN_IF_ERROR(ExecuteChild(children_[0], ctx, &in));
    std::set<Value> seen;
    for (Row& row : in) {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& [k, v] : row) fields.emplace_back(k, v);
      Value key = Value::Tuple(std::move(fields));
      if (seen.insert(std::move(key)).second) {
        out->push_back(std::move(row));
      }
    }
    return Status::OK();
  }

  std::string Describe() const override { return "Distinct"; }

  NodeKind kind() const override { return NodeKind::kDistinct; }

  PlanPtr WithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<DistinctNode>(std::move(children[0]));
  }
};

}  // namespace

std::string PlanToString(const PlanPtr& plan) {
  std::string out;
  std::function<void(const PlanPtr&, int)> walk = [&](const PlanPtr& node,
                                                      int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += node->Describe();
    out += '\n';
    for (const PlanPtr& c : node->children()) walk(c, depth + 1);
  };
  walk(plan, 0);
  return out;
}

calculus::Env RowToEnv(const Row& row,
                       const std::map<std::string, calculus::Sort>& sorts) {
  calculus::Env env;
  for (const auto& [col, value] : row) {
    auto it = sorts.find(col);
    Sort sort = it == sorts.end() ? Sort::kData : it->second;
    switch (sort) {
      case Sort::kData:
        env.data[col] = value;
        break;
      case Sort::kPath: {
        Result<Path> p = Path::FromValue(value);
        if (p.ok()) env.paths[col] = std::move(p).value();
        break;
      }
      case Sort::kAttr:
        if (value.kind() == ValueKind::kString) {
          env.attrs[col] = value.AsString();
        }
        break;
    }
  }
  return env;
}

PlanPtr RootScan(std::string root_name, std::string col) {
  return std::make_shared<RootScanNode>(std::move(root_name),
                                        std::move(col));
}
PlanPtr Unit() { return std::make_shared<UnitNode>(); }
PlanPtr AttrStep(PlanPtr input, std::string col, std::string attr,
                 std::string out, std::string path_col) {
  return std::make_shared<AttrStepNode>(std::move(input), std::move(col),
                                        std::move(attr), std::move(out),
                                        std::move(path_col));
}
PlanPtr DerefStep(PlanPtr input, std::string col, std::string out,
                  std::string path_col) {
  return std::make_shared<DerefStepNode>(std::move(input), std::move(col),
                                         std::move(out),
                                         std::move(path_col));
}
PlanPtr ClassFilter(PlanPtr input, std::string col, std::string class_name) {
  return std::make_shared<ClassFilterNode>(std::move(input), std::move(col),
                                           std::move(class_name));
}
PlanPtr UnnestList(PlanPtr input, std::string col, std::string out,
                   std::string pos_col, std::string path_col) {
  return std::make_shared<UnnestListNode>(std::move(input), std::move(col),
                                          std::move(out), std::move(pos_col),
                                          std::move(path_col));
}
PlanPtr IndexStep(PlanPtr input, std::string col, int64_t index,
                  std::string out, std::string path_col) {
  return std::make_shared<IndexStepNode>(std::move(input), std::move(col),
                                         index, std::move(out),
                                         std::move(path_col));
}
PlanPtr UnnestSet(PlanPtr input, std::string col, std::string out,
                  std::string path_col) {
  return std::make_shared<UnnestSetNode>(std::move(input), std::move(col),
                                         std::move(out),
                                         std::move(path_col));
}
PlanPtr ConstCol(PlanPtr input, std::string out, om::Value value) {
  return std::make_shared<ConstColNode>(std::move(input), std::move(out),
                                        std::move(value));
}
PlanPtr EmptyPathCol(PlanPtr input, std::string out) {
  return std::make_shared<ConstColNode>(std::move(input), std::move(out),
                                        Path().ToValue());
}
PlanPtr BindOrCheck(PlanPtr input, std::string src, std::string dst) {
  return std::make_shared<BindOrCheckNode>(std::move(input), std::move(src),
                                           std::move(dst));
}
PlanPtr Compute(PlanPtr input, std::string out, calculus::DataTermPtr term,
                const std::map<std::string, calculus::Sort>& sorts) {
  return std::make_shared<ComputeNode>(std::move(input), std::move(out),
                                       std::move(term), sorts);
}
PlanPtr Filter(PlanPtr input, calculus::FormulaPtr formula,
               const std::map<std::string, calculus::Sort>& sorts) {
  return std::make_shared<FilterNode>(std::move(input), std::move(formula),
                                      sorts);
}
PlanPtr IndexSemiJoin(PlanPtr input, calculus::DataTermPtr term,
                      std::string pattern_text, text::Pattern pattern,
                      const std::map<std::string, calculus::Sort>& sorts,
                      bool object_only) {
  return std::make_shared<IndexSemiJoinNode>(
      std::move(input), std::move(term), std::move(pattern_text),
      std::move(pattern), sorts, object_only);
}
PlanPtr IndexNearJoin(PlanPtr input, calculus::DataTermPtr term,
                      std::string word1, std::string word2,
                      size_t max_distance,
                      const std::map<std::string, calculus::Sort>& sorts,
                      bool object_only) {
  return std::make_shared<IndexNearJoinNode>(
      std::move(input), std::move(term), std::move(word1), std::move(word2),
      max_distance, sorts, object_only);
}
PlanPtr IndexDocFilterContains(PlanPtr input, std::string doc_col,
                               std::string pattern_text,
                               text::Pattern pattern,
                               std::string term_class) {
  return std::make_shared<IndexDocFilterNode>(
      std::move(input), std::move(doc_col), std::move(pattern_text),
      std::move(pattern), "", "", 0, std::move(term_class));
}
PlanPtr IndexDocFilterNear(PlanPtr input, std::string doc_col,
                           std::string word1, std::string word2,
                           size_t max_distance, std::string term_class) {
  return std::make_shared<IndexDocFilterNode>(
      std::move(input), std::move(doc_col), "", std::nullopt,
      std::move(word1), std::move(word2), max_distance,
      std::move(term_class));
}
PlanPtr UnionAll(std::vector<PlanPtr> inputs) {
  return std::make_shared<UnionAllNode>(std::move(inputs));
}
PlanPtr AntiSemiJoin(PlanPtr left, PlanPtr right,
                     std::vector<std::string> cols) {
  return std::make_shared<AntiSemiJoinNode>(std::move(left), std::move(right),
                                            std::move(cols));
}
PlanPtr CrossProduct(PlanPtr left, PlanPtr right) {
  return std::make_shared<CrossProductNode>(std::move(left),
                                            std::move(right));
}
PlanPtr Project(PlanPtr input, std::vector<std::string> cols) {
  return std::make_shared<ProjectNode>(std::move(input), std::move(cols));
}
PlanPtr Distinct(PlanPtr input) {
  return std::make_shared<DistinctNode>(std::move(input));
}

}  // namespace sgmlqdb::algebra
