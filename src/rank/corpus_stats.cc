#include "rank/corpus_stats.h"

#include <algorithm>
#include <set>

#include "base/strutil.h"
#include "text/pattern.h"

namespace sgmlqdb::rank {

namespace {

// Relaxed ordering everywhere: these are monitoring counters, not
// synchronization.
void BumpMax(std::atomic<uint64_t>& slot, uint64_t candidate) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !slot.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

CorpusStats::CorpusStats()
    : probe_stats_(std::make_shared<AtomicProbeStats>()) {}

void CorpusStats::AddDocument(
    uint64_t doc_oid,
    const std::vector<std::pair<uint64_t, std::string_view>>& units) {
  DocEntry entry;
  entry.doc = doc_oid;
  entry.first_unit = units.empty() ? 0 : units.front().first;
  entry.last_unit = units.empty() ? 0 : units.front().first;
  // Distinct terms of this document only — the delta the df map pays.
  std::set<std::string> seen;
  for (const auto& [unit, text] : units) {
    entry.first_unit = std::min(entry.first_unit, unit);
    entry.last_unit = std::max(entry.last_unit, unit);
    std::vector<std::string> tokens = text::Tokenize(text);
    entry.tokens += tokens.size();
    stats_.tokens_added += tokens.size();
    for (std::string& t : tokens) {
      seen.insert(AsciiToLower(t));
    }
  }
  for (const std::string& term : seen) {
    ++df_[term];
    ++stats_.df_updates;
  }
  total_tokens_ += entry.tokens;
  ++stats_.docs_added;
  // Loads assign ascending oids, so this is an append in the common
  // case; lower_bound keeps re-adds after out-of-order removal sound.
  auto it = std::lower_bound(
      docs_.begin(), docs_.end(), doc_oid,
      [](const DocEntry& e, uint64_t oid) { return e.doc < oid; });
  docs_.insert(it, entry);
}

void CorpusStats::RemoveDocument(
    uint64_t doc_oid,
    const std::vector<std::pair<uint64_t, std::string_view>>& units) {
  auto it = std::lower_bound(
      docs_.begin(), docs_.end(), doc_oid,
      [](const DocEntry& e, uint64_t oid) { return e.doc < oid; });
  if (it == docs_.end() || it->doc != doc_oid) return;
  std::set<std::string> seen;
  uint64_t tokens = 0;
  for (const auto& [unit, text] : units) {
    (void)unit;
    std::vector<std::string> toks = text::Tokenize(text);
    tokens += toks.size();
    stats_.tokens_removed += toks.size();
    for (std::string& t : toks) {
      seen.insert(AsciiToLower(t));
    }
  }
  for (const std::string& term : seen) {
    auto df = df_.find(term);
    if (df == df_.end()) continue;
    ++stats_.df_updates;
    if (--df->second == 0) df_.erase(df);
  }
  total_tokens_ -= std::min(total_tokens_, tokens);
  ++stats_.docs_removed;
  docs_.erase(it);
}

uint64_t CorpusStats::Df(const std::string& lowercased_term) const {
  auto it = df_.find(lowercased_term);
  return it == df_.end() ? 0 : it->second;
}

const CorpusStats::DocEntry* CorpusStats::FindDocByUnit(uint64_t unit) const {
  // Unit ranges are disjoint and sorted with the doc table (oid blocks
  // never interleave): the owner is the last entry with first_unit <=
  // unit.
  auto it = std::upper_bound(
      docs_.begin(), docs_.end(), unit,
      [](uint64_t u, const DocEntry& e) { return u < e.first_unit; });
  if (it == docs_.begin()) return nullptr;
  --it;
  return (unit >= it->first_unit && unit <= it->last_unit) ? &*it : nullptr;
}

const CorpusStats::DocEntry* CorpusStats::FindDoc(uint64_t doc_oid) const {
  auto it = std::lower_bound(
      docs_.begin(), docs_.end(), doc_oid,
      [](const DocEntry& e, uint64_t oid) { return e.doc < oid; });
  return (it != docs_.end() && it->doc == doc_oid) ? &*it : nullptr;
}

RankProbeStats CorpusStats::probe_stats() const {
  RankProbeStats out;
  const AtomicProbeStats& p = *probe_stats_;
  out.rank_queries = p.rank_queries.load(std::memory_order_relaxed);
  out.docs_scored = p.docs_scored.load(std::memory_order_relaxed);
  out.heap_pushes = p.heap_pushes.load(std::memory_order_relaxed);
  out.max_heap_size = p.max_heap_size.load(std::memory_order_relaxed);
  out.postings_decoded = p.postings_decoded.load(std::memory_order_relaxed);
  out.postings_skipped = p.postings_skipped.load(std::memory_order_relaxed);
  return out;
}

void CorpusStats::CountRankQuery(const RankProbeStats& q) const {
  AtomicProbeStats& p = *probe_stats_;
  p.rank_queries.fetch_add(q.rank_queries, std::memory_order_relaxed);
  p.docs_scored.fetch_add(q.docs_scored, std::memory_order_relaxed);
  p.heap_pushes.fetch_add(q.heap_pushes, std::memory_order_relaxed);
  BumpMax(p.max_heap_size, q.max_heap_size);
  p.postings_decoded.fetch_add(q.postings_decoded, std::memory_order_relaxed);
  p.postings_skipped.fetch_add(q.postings_skipped, std::memory_order_relaxed);
}

}  // namespace sgmlqdb::rank
