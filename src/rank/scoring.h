// Ranked retrieval and aggregation post-processing (ROADMAP item 4):
// the layer between the algebra/calculus engines and the client-
// visible result for the three statement shapes that do not reduce to
// a plain set of bindings —
//
//  * `rank(Root by <pattern>) [limit k]` — BM25-scored top-k document
//    retrieval over the positional index;
//  * `select agg(e) from ... group by k1, ...` — hash aggregation
//    (count/sum/min/max/avg) over distinct binding rows;
//  * `select e from ... order by k [asc|desc]` — merge-ordered
//    results keyed on an expression (document order falls out of the
//    oid total order).
//
// All three follow the same two-phase protocol so the sharded service
// can scatter them: each shard produces a *partial* (an om::Value
// that is mergeable, not client-visible), and FinalizePartials merges
// any number of partials — per-shard top-k heaps, per-shard partial
// aggregates, per-shard sorted runs — into the final value. A
// single-shard execution is just FinalizePartials over one partial,
// so the result is byte-identical at every shard count as long as the
// BM25 scoring context (N, total tokens, df) holds the *global* sums;
// ScoringContext carries exactly those, and the service sums them
// across shards before scattering.
//
// BM25 here is the Lucene-flavoured variant: idf = ln(1 + (N - df +
// 0.5)/(df + 0.5)) (always positive), k1 = 1.2, b = 0.75, field
// length = the document's total token count. Scores are IEEE doubles
// computed from integer statistics in a fixed order, hence
// deterministic and byte-identical wherever the integers are.

#ifndef SGMLQDB_RANK_SCORING_H_
#define SGMLQDB_RANK_SCORING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "om/value.h"
#include "rank/corpus_stats.h"
#include "text/pattern.h"

namespace sgmlqdb::calculus {
struct EvalContext;
}  // namespace sgmlqdb::calculus

namespace sgmlqdb::rank {

/// A binding row, structurally identical to algebra::Row.
using Row = std::map<std::string, om::Value>;

struct Bm25Params {
  static constexpr double kK1 = 1.2;
  static constexpr double kB = 0.75;
};

/// A `rank(Root by <pattern>) [limit k]` statement.
struct RankSpec {
  /// The persistence root whose member documents are ranked.
  std::string root_name;
  /// The raw pattern text (diagnostics / plan Describe).
  std::string pattern_text;
  /// Pre-parsed pattern (plain single words under and/or only —
  /// ExtractRankWords enforces it, which keeps index candidate sets
  /// exact and tf well-defined).
  text::Pattern pattern;
  /// The distinct query words, lowercased, in first-appearance order.
  /// BM25 terms are summed in exactly this order.
  std::vector<std::string> words;
  /// Top-k bound; 0 scores every matching document (the full-sort
  /// baseline E18 measures against).
  uint64_t limit = 0;
};

enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

/// "count" / "sum" / ... or nullptr when `name` is not an aggregate.
const AggKind* AggKindFromName(const std::string& lowercase_name);
const char* AggKindName(AggKind kind);

/// A `select agg(e) ... group by k1, ..., kn` statement. The
/// translator binds the keys to columns __g0..__g{n-1} and the
/// aggregate argument to __a0, and puts every scope variable in the
/// head — so the engine's distinct rows are distinct *bindings*, and
/// the aggregate folds each binding once (SQL-ish bag semantics over
/// the join result). sum/avg require integer arguments; partial sums
/// then merge associatively across shards.
struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  size_t key_count = 1;
};

/// A `select e ... order by k [asc|desc]` statement: key in __o0,
/// value in __r; distinct (key, value) pairs, final order (key
/// direction, then canonical value order — oid order for objects,
/// which is document/load order).
struct OrderSpec {
  bool descending = false;
};

/// Which post-processing a prepared statement needs, if any.
struct PostSpec {
  enum class Kind { kRank, kAggregate, kOrderBy };
  Kind kind = Kind::kRank;
  RankSpec rank;      // kRank
  AggregateSpec agg;  // kAggregate
  OrderSpec order;    // kOrderBy
};

/// The global BM25 statistics a ranked execution scores with: df[i]
/// aligned with RankSpec::words. On a sharded store these are the
/// cross-shard sums; locally they come straight from one CorpusStats.
struct ScoringContext {
  uint64_t doc_count = 0;
  uint64_t total_tokens = 0;
  std::vector<uint64_t> df;
};

/// Validates the rankable pattern fragment — plain single words
/// combined with and/or (no not/phrase/regex: candidates stay exact
/// and every term has a postings list) — and collects the distinct
/// lowercased words in first-appearance order.
Status ExtractRankWords(const text::Pattern& pattern,
                        std::vector<std::string>* words);

/// This snapshot's contribution to the scoring context.
ScoringContext LocalScoring(const CorpusStats& stats, const RankSpec& spec);

/// One document's BM25 score: tf[i] aligned with ScoringContext::df.
double Bm25Score(const ScoringContext& scoring,
                 const std::vector<uint64_t>& tf, uint64_t doc_tokens);

/// Scores the root's documents against the spec and returns the
/// partial rows {__doc, __score}, ordered (score desc, oid asc) and
/// truncated to limit. With `use_index` and a context carrying the
/// inverted index + corpus stats, candidates come from the index and
/// term frequencies from one forward galloping cursor per word with a
/// bounded k-heap (the full scored set is never materialized);
/// otherwise every document's text is tokenized and matched — the
/// brute-force ground truth, byte-identical by construction. A null
/// `scoring` derives local statistics (single-store execution).
Result<std::vector<Row>> TopKScoreRows(const calculus::EvalContext& ctx,
                                       const RankSpec& spec,
                                       const ScoringContext* scoring,
                                       bool use_index);

/// Folds distinct binding rows into one partial group row
/// {__k: list(keys), __c: count, __s: state} per group, ordered by
/// key. Rows missing a key or argument column are skipped (union
/// branches without the column — mirroring the head-tuple rule).
Result<std::vector<Row>> AggregateRows(const AggregateSpec& spec,
                                       const std::vector<Row>& rows);

/// Dedups and orders (key, value) rows into partial rows
/// {__k: key, __v: value} in final order.
Result<std::vector<Row>> OrderRows(const OrderSpec& spec,
                                   const std::vector<Row>& rows);

/// Decomposes an engine result set (tuples of named head fields) into
/// binding rows — the naive evaluator's bridge into the row-level
/// folds above.
std::vector<Row> BindingsToRows(const om::Value& result_set);

/// Encodes post rows as the mergeable partial value the sharded
/// gather ships: a list, one tuple per row, field order fixed.
Result<om::Value> PostRowsToPartial(const PostSpec& post,
                                    const std::vector<Row>& rows);

/// Merges per-shard partials into the client-visible result:
///  * rank     -> list of tuple(doc: object, score: float), score
///                desc / oid asc, truncated to limit;
///  * agg      -> set of tuple(key, value) (key unwrapped when there
///                is a single group-by expression);
///  * order-by -> list of the values in final order.
/// One partial (single shard) and N partials produce byte-identical
/// results.
Result<om::Value> FinalizePartials(const PostSpec& post,
                                   const std::vector<om::Value>& parts);

}  // namespace sgmlqdb::rank

#endif  // SGMLQDB_RANK_SCORING_H_
