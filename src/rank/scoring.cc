#include "rank/scoring.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "base/exec_guard.h"
#include "base/strutil.h"
#include "calculus/eval.h"
#include "om/database.h"
#include "text/index.h"

namespace sgmlqdb::rank {

using om::Value;
using om::ValueKind;

namespace {

/// One scored document. `Better` is the single total order every
/// path (heap, sorts, cross-shard merge) ranks by: score descending,
/// ties broken toward the smaller oid (document/load order).
struct Scored {
  double score = 0.0;
  uint64_t doc = 0;
};

bool Better(const Scored& a, const Scored& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Document oids of the persistence root's collection members — the
/// universe a rank statement retrieves from.
Result<std::set<uint64_t>> RootMembers(const calculus::EvalContext& ctx,
                                       const std::string& root_name) {
  if (ctx.db == nullptr) {
    return Status::InvalidArgument("rank: no database in context");
  }
  std::set<uint64_t> members;
  Result<Value> looked_up = ctx.db->LookupName(root_name);
  if (!looked_up.ok()) {
    // A schema-declared root that no document has been appended to
    // yet (an empty corpus, or a shard that happens to hold none of
    // the root's documents) ranks over the empty set; only a name the
    // schema has never heard of is an error.
    if (looked_up.status().code() == StatusCode::kNotFound &&
        ctx.db->schema().FindName(root_name) != nullptr) {
      return members;
    }
    return looked_up.status();
  }
  Value root = *std::move(looked_up);
  if (root.kind() == ValueKind::kObject) {
    members.insert(root.AsObject().id());
    return members;
  }
  if (root.kind() != ValueKind::kList && root.kind() != ValueKind::kSet) {
    return Status::TypeError("rank: root '" + root_name +
                             "' is not a collection of documents");
  }
  for (size_t i = 0; i < root.size(); ++i) {
    Value v = root.Element(i);
    if (v.kind() == ValueKind::kObject) members.insert(v.AsObject().id());
  }
  return members;
}

/// Lowercased word occurrences in one unit's text.
uint64_t CountWord(const std::vector<std::string>& lowered_tokens,
                   const std::string& word) {
  uint64_t n = 0;
  for (const std::string& t : lowered_tokens) {
    if (t == word) ++n;
  }
  return n;
}

std::vector<Row> ScoredToRows(std::vector<Scored> scored, uint64_t limit) {
  std::sort(scored.begin(), scored.end(), Better);
  if (limit > 0 && scored.size() > limit) scored.resize(limit);
  std::vector<Row> rows;
  rows.reserve(scored.size());
  for (const Scored& s : scored) {
    Row row;
    row["__doc"] = Value::Object(om::ObjectId(s.doc));
    row["__score"] = Value::Float(s.score);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Bounded top-k accumulator: a min-heap (worst kept entry at the
/// top) capped at `limit`, or the unbounded score-all vector when
/// limit == 0. The heap never holds more than k entries — the
/// "never materializes the full scored set" contract, proven by the
/// max_heap_size probe counter.
class TopK {
 public:
  explicit TopK(uint64_t limit) : limit_(limit) {}

  void Offer(const Scored& s, RankProbeStats* q) {
    if (limit_ == 0) {
      all_.push_back(s);
      ++q->heap_pushes;
      q->max_heap_size = std::max<uint64_t>(q->max_heap_size, all_.size());
      return;
    }
    if (heap_.size() < limit_) {
      heap_.push(s);
      ++q->heap_pushes;
      q->max_heap_size = std::max<uint64_t>(q->max_heap_size, heap_.size());
      return;
    }
    if (Better(s, heap_.top())) {
      heap_.pop();
      heap_.push(s);
      ++q->heap_pushes;
    }
  }

  std::vector<Scored> Take() {
    if (limit_ == 0) return std::move(all_);
    std::vector<Scored> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    return out;
  }

 private:
  struct WorstOnTop {
    bool operator()(const Scored& a, const Scored& b) const {
      return Better(a, b);  // max per "better" order == worst on top
    }
  };

  uint64_t limit_;
  std::priority_queue<Scored, std::vector<Scored>, WorstOnTop> heap_;
  std::vector<Scored> all_;
};

/// Index path: candidates from the inverted index, term frequencies
/// from one forward galloping cursor per query word (documents are
/// visited in ascending unit order, so each cursor sweeps its
/// postings list at most once, skipping non-candidate blocks).
Result<std::vector<Row>> TopKViaIndex(const calculus::EvalContext& ctx,
                                      const RankSpec& spec,
                                      const ScoringContext& scoring,
                                      const std::set<uint64_t>& members) {
  const text::InvertedIndex& index = *ctx.text_index;
  const CorpusStats& stats = *ctx.rank_stats;
  RankProbeStats q;
  q.rank_queries = 1;
  text::DecodeCounters counters;

  bool exact = false;
  std::vector<text::UnitId> units = index.Candidates(spec.pattern, &exact);

  struct WordCursor {
    std::shared_ptr<const text::CompressedPostings> list;
    text::CompressedPostings::Cursor cur;
  };
  std::vector<WordCursor> cursors(spec.words.size());
  for (size_t i = 0; i < spec.words.size(); ++i) {
    cursors[i].list = index.Postings(spec.words[i]);
    if (cursors[i].list != nullptr) {
      cursors[i].cur = cursors[i].list->cursor(&counters);
    }
  }

  // Candidate units -> candidate documents (each doc owns a
  // contiguous ascending unit range, so one range lookup per doc).
  std::vector<const CorpusStats::DocEntry*> cand;
  const CorpusStats::DocEntry* last = nullptr;
  for (text::UnitId unit : units) {
    if (last != nullptr && unit <= last->last_unit) continue;
    const CorpusStats::DocEntry* d = stats.FindDocByUnit(unit);
    if (d == nullptr) continue;
    last = d;
    if (members.count(d->doc) > 0) cand.push_back(d);
  }

  TopK topk(spec.limit);
  std::vector<uint64_t> tf(spec.words.size());
  std::vector<uint32_t> scratch;
  for (const CorpusStats::DocEntry* d : cand) {
    if (ctx.guard != nullptr) SGMLQDB_RETURN_IF_ERROR(ctx.guard->Check());
    ++q.docs_scored;
    for (size_t i = 0; i < cursors.size(); ++i) {
      tf[i] = 0;
      WordCursor& wc = cursors[i];
      if (wc.cur.at_end()) continue;
      if (wc.cur.unit() < d->first_unit &&
          !wc.cur.SkipToUnit(d->first_unit)) {
        continue;
      }
      while (!wc.cur.at_end() && wc.cur.unit() <= d->last_unit) {
        scratch.clear();
        wc.cur.CurrentUnitPositions(&scratch);
        tf[i] += scratch.size();
      }
    }
    topk.Offer(Scored{Bm25Score(scoring, tf, d->tokens), d->doc}, &q);
  }

  q.postings_decoded = counters.postings_decoded;
  q.postings_skipped = counters.postings_skipped;
  stats.CountRankQuery(q);
  return ScoredToRows(topk.Take(), spec.limit);
}

/// Brute-force path: tokenize every document of the corpus, match
/// the pattern per unit, count term occurrences directly. Slow and
/// index-free — the ground truth the parity matrix compares against,
/// and the degraded path when the context has no index.
Result<std::vector<Row>> TopKViaScan(const calculus::EvalContext& ctx,
                                     const RankSpec& spec,
                                     const ScoringContext* scoring,
                                     const std::set<uint64_t>& members) {
  if (ctx.element_texts == nullptr || ctx.unit_docs == nullptr) {
    return Status::InvalidArgument(
        "rank: context has no element texts / unit->doc map");
  }
  // The corpus: every loaded document, as (doc -> its units' texts).
  std::map<uint64_t, std::vector<const std::string*>> docs;
  for (const auto& [unit, doc] : *ctx.unit_docs) {
    auto text = ctx.element_texts->find(unit);
    if (text == ctx.element_texts->end()) continue;
    docs[doc].push_back(&text->second);
  }

  // Global statistics: supplied (sharded gather), from the snapshot's
  // CorpusStats, or recomputed by scanning — all three agree because
  // they count the same tokenization.
  ScoringContext local;
  if (scoring == nullptr) {
    if (ctx.rank_stats != nullptr) {
      local = LocalScoring(*ctx.rank_stats, spec);
    } else {
      local.doc_count = docs.size();
      local.df.assign(spec.words.size(), 0);
      for (const auto& [doc, texts] : docs) {
        std::vector<bool> seen(spec.words.size(), false);
        for (const std::string* text : texts) {
          for (const std::string& t : text::Tokenize(*text)) {
            std::string lower = AsciiToLower(t);
            ++local.total_tokens;
            for (size_t i = 0; i < spec.words.size(); ++i) {
              if (!seen[i] && lower == spec.words[i]) seen[i] = true;
            }
          }
        }
        for (size_t i = 0; i < seen.size(); ++i) {
          if (seen[i]) ++local.df[i];
        }
      }
    }
    scoring = &local;
  }

  TopK topk(spec.limit);
  RankProbeStats q;
  q.rank_queries = 1;
  std::vector<uint64_t> tf(spec.words.size());
  for (const auto& [doc, texts] : docs) {
    if (ctx.guard != nullptr) SGMLQDB_RETURN_IF_ERROR(ctx.guard->Check());
    if (members.count(doc) == 0) continue;
    std::fill(tf.begin(), tf.end(), 0);
    uint64_t tokens = 0;
    bool matches = false;
    for (const std::string* text : texts) {
      std::vector<std::string> toks = text::Tokenize(*text);
      tokens += toks.size();
      if (!matches && spec.pattern.MatchesTokens(toks)) matches = true;
      for (std::string& t : toks) t = AsciiToLower(t);
      for (size_t i = 0; i < spec.words.size(); ++i) {
        tf[i] += CountWord(toks, spec.words[i]);
      }
    }
    if (!matches) continue;
    ++q.docs_scored;
    topk.Offer(Scored{Bm25Score(*scoring, tf, tokens), doc}, &q);
  }
  if (ctx.rank_stats != nullptr) ctx.rank_stats->CountRankQuery(q);
  return ScoredToRows(topk.Take(), spec.limit);
}

Status CollectRankWords(const text::Pattern::Node& node,
                        std::vector<std::string>* words) {
  switch (node.kind) {
    case text::Pattern::Kind::kWord: {
      if (node.word.token_count() != 1) {
        return Status::Unsupported(
            "rank: phrases are not rankable (single words under and/or "
            "only)");
      }
      const std::string* plain = node.word.plain_word(0);
      if (plain == nullptr) {
        return Status::Unsupported(
            "rank: regex word patterns are not rankable (plain words "
            "only)");
      }
      if (std::find(words->begin(), words->end(), *plain) == words->end()) {
        words->push_back(*plain);
      }
      return Status::OK();
    }
    case text::Pattern::Kind::kAnd:
    case text::Pattern::Kind::kOr:
      for (const auto& kid : node.kids) {
        SGMLQDB_RETURN_IF_ERROR(CollectRankWords(*kid, words));
      }
      return Status::OK();
    case text::Pattern::Kind::kNot:
      return Status::Unsupported(
          "rank: 'not' is not rankable (scores need positive terms)");
  }
  return Status::Internal("rank: unknown pattern node");
}

/// The group key columns of an aggregate spec ("__g0".."__g{n-1}").
std::vector<std::string> KeyColumns(const AggregateSpec& spec) {
  std::vector<std::string> cols;
  cols.reserve(spec.key_count);
  for (size_t i = 0; i < spec.key_count; ++i) {
    cols.push_back("__g" + std::to_string(i));
  }
  return cols;
}

/// Running state of one group, used both per-shard (AggregateRows)
/// and at the gather site (FinalizePartials) — merging two states is
/// the same fold, which is what makes partials associative.
struct GroupState {
  uint64_t count = 0;
  int64_t sum = 0;
  bool has_extreme = false;
  Value extreme;
};

Status FoldValue(AggKind kind, const Value& arg, GroupState* g) {
  ++g->count;
  switch (kind) {
    case AggKind::kCount:
      return Status::OK();
    case AggKind::kSum:
    case AggKind::kAvg:
      if (arg.kind() != ValueKind::kInteger) {
        return Status::TypeError(
            std::string(kind == AggKind::kSum ? "sum" : "avg") +
            " requires integer arguments, got " +
            om::ValueKindToString(arg.kind()));
      }
      g->sum += arg.AsInteger();
      return Status::OK();
    case AggKind::kMin:
      if (!g->has_extreme || Value::Compare(arg, g->extreme) < 0) {
        g->extreme = arg;
        g->has_extreme = true;
      }
      return Status::OK();
    case AggKind::kMax:
      if (!g->has_extreme || Value::Compare(arg, g->extreme) > 0) {
        g->extreme = arg;
        g->has_extreme = true;
      }
      return Status::OK();
  }
  return Status::Internal("unknown aggregate kind");
}

Status FoldState(AggKind kind, uint64_t count, const Value& state,
                 GroupState* g) {
  g->count += count;
  switch (kind) {
    case AggKind::kCount:
      return Status::OK();
    case AggKind::kSum:
    case AggKind::kAvg:
      if (state.kind() != ValueKind::kInteger) {
        return Status::Internal("aggregate partial state is not integer");
      }
      g->sum += state.AsInteger();
      return Status::OK();
    case AggKind::kMin:
      if (!g->has_extreme || Value::Compare(state, g->extreme) < 0) {
        g->extreme = state;
        g->has_extreme = true;
      }
      return Status::OK();
    case AggKind::kMax:
      if (!g->has_extreme || Value::Compare(state, g->extreme) > 0) {
        g->extreme = state;
        g->has_extreme = true;
      }
      return Status::OK();
  }
  return Status::Internal("unknown aggregate kind");
}

Value StateValue(AggKind kind, const GroupState& g) {
  switch (kind) {
    case AggKind::kCount:
      return Value::Nil();
    case AggKind::kSum:
    case AggKind::kAvg:
      return Value::Integer(g.sum);
    case AggKind::kMin:
    case AggKind::kMax:
      return g.extreme;
  }
  return Value::Nil();
}

Value FinalValue(AggKind kind, const GroupState& g) {
  switch (kind) {
    case AggKind::kCount:
      return Value::Integer(static_cast<int64_t>(g.count));
    case AggKind::kSum:
      return Value::Integer(g.sum);
    case AggKind::kAvg:
      return Value::Float(static_cast<double>(g.sum) /
                          static_cast<double>(g.count));
    case AggKind::kMin:
    case AggKind::kMax:
      return g.extreme;
  }
  return Value::Nil();
}

/// (key, value) pair ordering for order-by: key in the requested
/// direction, then canonical value order — the deterministic
/// tie-break every shard and the gather site agree on.
bool OrderedBefore(const OrderSpec& spec, const Value& k1, const Value& v1,
                   const Value& k2, const Value& v2) {
  int c = Value::Compare(k1, k2);
  if (c != 0) return spec.descending ? c > 0 : c < 0;
  return Value::Compare(v1, v2) < 0;
}

Result<Value> RequireField(const Value& tuple, std::string_view field) {
  std::optional<Value> v = tuple.FindField(field);
  if (!v.has_value()) {
    return Status::Internal("post partial element lacks field '" +
                            std::string(field) + "'");
  }
  return *v;
}

}  // namespace

const AggKind* AggKindFromName(const std::string& lowercase_name) {
  static const std::map<std::string, AggKind> kKinds = {
      {"count", AggKind::kCount}, {"sum", AggKind::kSum},
      {"min", AggKind::kMin},     {"max", AggKind::kMax},
      {"avg", AggKind::kAvg},
  };
  auto it = kKinds.find(lowercase_name);
  return it == kKinds.end() ? nullptr : &it->second;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

Status ExtractRankWords(const text::Pattern& pattern,
                        std::vector<std::string>* words) {
  words->clear();
  if (pattern.root() == nullptr) {
    return Status::InvalidArgument("rank: empty pattern");
  }
  SGMLQDB_RETURN_IF_ERROR(CollectRankWords(*pattern.root(), words));
  if (words->empty()) {
    return Status::InvalidArgument("rank: pattern has no query words");
  }
  return Status::OK();
}

ScoringContext LocalScoring(const CorpusStats& stats, const RankSpec& spec) {
  ScoringContext sc;
  sc.doc_count = stats.doc_count();
  sc.total_tokens = stats.total_tokens();
  sc.df.reserve(spec.words.size());
  for (const std::string& w : spec.words) {
    sc.df.push_back(stats.Df(w));
  }
  return sc;
}

double Bm25Score(const ScoringContext& scoring,
                 const std::vector<uint64_t>& tf, uint64_t doc_tokens) {
  const double n = static_cast<double>(scoring.doc_count);
  const double avg =
      scoring.doc_count == 0
          ? 1.0
          : static_cast<double>(scoring.total_tokens) /
                static_cast<double>(scoring.doc_count);
  const double norm =
      Bm25Params::kK1 *
      (1.0 - Bm25Params::kB +
       Bm25Params::kB * (avg == 0.0 ? 0.0
                                    : static_cast<double>(doc_tokens) / avg));
  double score = 0.0;
  for (size_t i = 0; i < tf.size(); ++i) {
    if (tf[i] == 0) continue;
    const double df = static_cast<double>(scoring.df[i]);
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    const double f = static_cast<double>(tf[i]);
    score += idf * (f * (Bm25Params::kK1 + 1.0)) / (f + norm);
  }
  return score;
}

Result<std::vector<Row>> TopKScoreRows(const calculus::EvalContext& ctx,
                                       const RankSpec& spec,
                                       const ScoringContext* scoring,
                                       bool use_index) {
  SGMLQDB_ASSIGN_OR_RETURN(std::set<uint64_t> members,
                           RootMembers(ctx, spec.root_name));
  if (use_index && ctx.text_index != nullptr && ctx.rank_stats != nullptr) {
    ScoringContext local;
    if (scoring == nullptr) {
      local = LocalScoring(*ctx.rank_stats, spec);
      scoring = &local;
    }
    return TopKViaIndex(ctx, spec, *scoring, members);
  }
  return TopKViaScan(ctx, spec, scoring, members);
}

Result<std::vector<Row>> AggregateRows(const AggregateSpec& spec,
                                       const std::vector<Row>& rows) {
  const std::vector<std::string> key_cols = KeyColumns(spec);
  std::map<Value, GroupState> groups;
  for (const Row& row : rows) {
    std::vector<Value> keys;
    keys.reserve(key_cols.size());
    bool complete = true;
    for (const std::string& col : key_cols) {
      auto it = row.find(col);
      if (it == row.end()) {
        complete = false;
        break;
      }
      keys.push_back(it->second);
    }
    auto arg = row.find("__a0");
    if (!complete || arg == row.end()) continue;
    SGMLQDB_RETURN_IF_ERROR(FoldValue(
        spec.kind, arg->second, &groups[Value::List(std::move(keys))]));
  }
  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    Row row;
    row["__k"] = key;
    row["__c"] = Value::Integer(static_cast<int64_t>(g.count));
    row["__s"] = StateValue(spec.kind, g);
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> OrderRows(const OrderSpec& spec,
                                   const std::vector<Row>& rows) {
  std::vector<std::pair<Value, Value>> pairs;
  pairs.reserve(rows.size());
  for (const Row& row : rows) {
    auto k = row.find("__o0");
    auto v = row.find("__r");
    if (k == row.end() || v == row.end()) continue;
    pairs.emplace_back(k->second, v->second);
  }
  std::sort(pairs.begin(), pairs.end(),
            [&spec](const auto& a, const auto& b) {
              return OrderedBefore(spec, a.first, a.second, b.first,
                                   b.second);
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first && a.second == b.second;
                          }),
              pairs.end());
  std::vector<Row> out;
  out.reserve(pairs.size());
  for (auto& [k, v] : pairs) {
    Row row;
    row["__k"] = std::move(k);
    row["__v"] = std::move(v);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Row> BindingsToRows(const om::Value& result_set) {
  std::vector<Row> rows;
  if (result_set.kind() != ValueKind::kSet &&
      result_set.kind() != ValueKind::kList) {
    return rows;
  }
  rows.reserve(result_set.size());
  for (size_t i = 0; i < result_set.size(); ++i) {
    Value elem = result_set.Element(i);
    if (elem.kind() != ValueKind::kTuple) continue;
    Row row;
    for (size_t f = 0; f < elem.size(); ++f) {
      row[elem.FieldName(f)] = elem.FieldValue(f);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<om::Value> PostRowsToPartial(const PostSpec& post,
                                    const std::vector<Row>& rows) {
  std::vector<std::pair<const char*, const char*>> mapping;
  switch (post.kind) {
    case PostSpec::Kind::kRank:
      mapping = {{"doc", "__doc"}, {"score", "__score"}};
      break;
    case PostSpec::Kind::kAggregate:
      mapping = {{"k", "__k"}, {"c", "__c"}, {"s", "__s"}};
      break;
    case PostSpec::Kind::kOrderBy:
      mapping = {{"k", "__k"}, {"v", "__v"}};
      break;
  }
  std::vector<Value> elems;
  elems.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::pair<std::string, Value>> fields;
    fields.reserve(mapping.size());
    for (const auto& [field, col] : mapping) {
      auto it = row.find(col);
      if (it == row.end()) {
        return Status::Internal(std::string("post row lacks column ") + col);
      }
      fields.emplace_back(field, it->second);
    }
    elems.push_back(Value::Tuple(std::move(fields)));
  }
  return Value::List(std::move(elems));
}

Result<om::Value> FinalizePartials(const PostSpec& post,
                                   const std::vector<om::Value>& parts) {
  for (const Value& part : parts) {
    if (part.kind() != ValueKind::kList) {
      return Status::Internal("post partial is not a list");
    }
  }
  switch (post.kind) {
    case PostSpec::Kind::kRank: {
      struct Entry {
        Scored s;
        Value tuple;
      };
      std::vector<Entry> all;
      for (const Value& part : parts) {
        for (size_t i = 0; i < part.size(); ++i) {
          Value elem = part.Element(i);
          SGMLQDB_ASSIGN_OR_RETURN(Value doc, RequireField(elem, "doc"));
          SGMLQDB_ASSIGN_OR_RETURN(Value score, RequireField(elem, "score"));
          all.push_back(
              {Scored{score.AsFloat(), doc.AsObject().id()}, std::move(elem)});
        }
      }
      std::sort(all.begin(), all.end(),
                [](const Entry& a, const Entry& b) { return Better(a.s, b.s); });
      if (post.rank.limit > 0 && all.size() > post.rank.limit) {
        all.resize(post.rank.limit);
      }
      std::vector<Value> elems;
      elems.reserve(all.size());
      for (Entry& e : all) elems.push_back(std::move(e.tuple));
      return Value::List(std::move(elems));
    }
    case PostSpec::Kind::kAggregate: {
      std::map<Value, GroupState> groups;
      for (const Value& part : parts) {
        for (size_t i = 0; i < part.size(); ++i) {
          Value elem = part.Element(i);
          SGMLQDB_ASSIGN_OR_RETURN(Value k, RequireField(elem, "k"));
          SGMLQDB_ASSIGN_OR_RETURN(Value c, RequireField(elem, "c"));
          SGMLQDB_ASSIGN_OR_RETURN(Value s, RequireField(elem, "s"));
          SGMLQDB_RETURN_IF_ERROR(
              FoldState(post.agg.kind, static_cast<uint64_t>(c.AsInteger()),
                        s, &groups[k]));
        }
      }
      std::vector<Value> elems;
      elems.reserve(groups.size());
      for (const auto& [key, g] : groups) {
        Value out_key =
            post.agg.key_count == 1 && key.size() == 1 ? key.Element(0) : key;
        elems.push_back(Value::Tuple({{"key", std::move(out_key)},
                                      {"value", FinalValue(post.agg.kind, g)}}));
      }
      return Value::Set(std::move(elems));
    }
    case PostSpec::Kind::kOrderBy: {
      std::vector<std::pair<Value, Value>> pairs;
      for (const Value& part : parts) {
        for (size_t i = 0; i < part.size(); ++i) {
          Value elem = part.Element(i);
          SGMLQDB_ASSIGN_OR_RETURN(Value k, RequireField(elem, "k"));
          SGMLQDB_ASSIGN_OR_RETURN(Value v, RequireField(elem, "v"));
          pairs.emplace_back(std::move(k), std::move(v));
        }
      }
      std::sort(pairs.begin(), pairs.end(),
                [&post](const auto& a, const auto& b) {
                  return OrderedBefore(post.order, a.first, a.second, b.first,
                                       b.second);
                });
      pairs.erase(
          std::unique(pairs.begin(), pairs.end(),
                      [](const auto& a, const auto& b) {
                        return a.first == b.first && a.second == b.second;
                      }),
          pairs.end());
      std::vector<Value> values;
      values.reserve(pairs.size());
      for (auto& [k, v] : pairs) values.push_back(std::move(v));
      return Value::List(std::move(values));
    }
  }
  return Status::Internal("unknown post kind");
}

}  // namespace sgmlqdb::rank
