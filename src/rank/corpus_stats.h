// Per-epoch corpus statistics for ranked retrieval (BM25): document
// count, per-document field lengths (token counts), and per-term
// document frequencies over the same tokenization the inverted index
// uses (text::Tokenize + ASCII lowercasing).
//
// Maintenance is incremental and delta-proportional, mirroring the
// inverted index's contract: loading a document tokenizes exactly
// that document's units (AddDocument), removing one re-tokenizes
// exactly the removed texts (RemoveDocument) — never a corpus rescan.
// The lifetime maintenance counters are carried across copies, so the
// delta across one ingest publish proves how much work the publish
// did (the snapshot-isolation suites assert on it).
//
// A CorpusStats is snapshotted per epoch alongside the index: the
// IngestSession clones it into its workspace (flat copies of the
// document table and df map, O(docs + vocabulary) — the same order as
// the index's O(#terms) dictionary clone) and publishes the clone.
// Published copies are immutable and safe for unsynchronized reads.
// The rank-probe counters (top-k heap and cursor work) are shared by
// the whole lineage, like the index's probe stats.

#ifndef SGMLQDB_RANK_CORPUS_STATS_H_
#define SGMLQDB_RANK_CORPUS_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgmlqdb::rank {

/// Cumulative maintenance counters, copied with the stats (lineage
/// history). A rebuild would re-count every document; incremental
/// maintenance grows these by exactly the ingested delta.
struct RankMaintenanceStats {
  uint64_t docs_added = 0;
  uint64_t docs_removed = 0;
  /// Tokens tokenized by AddDocument / RemoveDocument calls.
  uint64_t tokens_added = 0;
  uint64_t tokens_removed = 0;
  /// Distinct (document, term) df updates.
  uint64_t df_updates = 0;
};

/// Cumulative probe-side counters for ranked execution, shared across
/// every copy in a stats lineage (IndexProbeStats-style). Surfaced by
/// the server's /stats `rank` block.
struct RankProbeStats {
  uint64_t rank_queries = 0;
  /// Candidate documents considered by top-k scoring.
  uint64_t docs_scored = 0;
  /// Bounded-heap insertions (<= docs_scored; the gap is candidates
  /// rejected against the current k-th score without a heap update).
  uint64_t heap_pushes = 0;
  /// High-water mark of the bounded heap (== k for limited queries —
  /// the "never materializes the full scored set" evidence).
  uint64_t max_heap_size = 0;
  /// Postings decoded / galloped past by the tf-counting cursors.
  uint64_t postings_decoded = 0;
  uint64_t postings_skipped = 0;
};

class CorpusStats {
 public:
  /// One live document: its root oid, the contiguous unit-id range
  /// its element objects occupy (units are assigned in ascending
  /// order within one load and blocks never interleave across
  /// documents), and its field length in tokens.
  struct DocEntry {
    uint64_t doc = 0;
    uint64_t first_unit = 0;
    uint64_t last_unit = 0;
    uint64_t tokens = 0;
  };

  CorpusStats();
  /// Copies share the probe counters (lineage-wide); the document
  /// table and df map are flat copies that diverge independently.
  CorpusStats(const CorpusStats&) = default;
  CorpusStats& operator=(const CorpusStats&) = default;

  /// Accounts a newly loaded document: `units` are its (unit id,
  /// inner text) pairs, exactly what the loader hands the inverted
  /// index. Cost is proportional to the document's text.
  void AddDocument(
      uint64_t doc_oid,
      const std::vector<std::pair<uint64_t, std::string_view>>& units);

  /// Removes a document previously added with exactly these units
  /// (callers keep the original texts, e.g. the snapshot's
  /// element_texts). Cost is proportional to the removed document.
  void RemoveDocument(
      uint64_t doc_oid,
      const std::vector<std::pair<uint64_t, std::string_view>>& units);

  size_t doc_count() const { return docs_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }
  /// Terms with a nonzero document frequency.
  size_t df_term_count() const { return df_.size(); }
  /// Documents containing `term` (already lowercased).
  uint64_t Df(const std::string& lowercased_term) const;

  /// The document whose unit range contains `unit`, or null.
  const DocEntry* FindDocByUnit(uint64_t unit) const;
  /// The document with root oid `doc_oid`, or null.
  const DocEntry* FindDoc(uint64_t doc_oid) const;
  /// All live documents, ascending by root oid (== ascending by unit
  /// range — load order).
  const std::vector<DocEntry>& docs() const { return docs_; }

  const RankMaintenanceStats& maintenance_stats() const { return stats_; }
  /// Lineage-wide probe counters (a ranked query against any snapshot
  /// of the lineage counts here).
  RankProbeStats probe_stats() const;
  /// Folds one ranked query's counters into the lineage counters.
  void CountRankQuery(const RankProbeStats& q) const;

 private:
  struct AtomicProbeStats {
    std::atomic<uint64_t> rank_queries{0};
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> heap_pushes{0};
    std::atomic<uint64_t> max_heap_size{0};
    std::atomic<uint64_t> postings_decoded{0};
    std::atomic<uint64_t> postings_skipped{0};
  };

  /// Document table sorted by root oid; binary-searched. Documents
  /// are appended in load order (ascending oids), so maintenance is
  /// O(log docs) search + amortized O(1) insert.
  std::vector<DocEntry> docs_;
  /// term -> number of live documents containing it.
  std::map<std::string, uint64_t> df_;
  uint64_t total_tokens_ = 0;
  RankMaintenanceStats stats_;
  std::shared_ptr<AtomicProbeStats> probe_stats_;
};

}  // namespace sgmlqdb::rank

#endif  // SGMLQDB_RANK_CORPUS_STATS_H_
