// Naming conventions of the Figure 3 mapping:
//   element `article`  -> class  `Article`
//   component `author+` -> attribute `authors: list(Author)`
//   component `body+`   -> attribute `bodies: list(Body)`
//   unnamed groups      -> system-supplied markers a1, a2, ...

#ifndef SGMLQDB_MAPPING_NAMES_H_
#define SGMLQDB_MAPPING_NAMES_H_

#include <string>
#include <string_view>

namespace sgmlqdb::mapping {

/// "article" -> "Article", "subsectn" -> "Subsectn".
std::string ClassNameFor(std::string_view element);

/// Attribute name for a non-repeated component: the element name.
std::string FieldNameFor(std::string_view element);

/// Attribute name for a repeated (+/*) component: naive English
/// plural — "author" -> "authors", "body" -> "bodies".
std::string PluralFieldNameFor(std::string_view element);

/// System-supplied marker for the k-th unnamed alternative (1-based):
/// "a1", "a2", ...
std::string SystemMarker(size_t k);

/// Names of the base classes supplied by the mapping.
inline constexpr std::string_view kTextClass = "Text";
inline constexpr std::string_view kBitmapClass = "Bitmap";
/// The attribute holding character data of Text-derived classes.
inline constexpr std::string_view kContentAttr = "content";
/// The attribute holding the external data reference of Bitmap
/// classes.
inline constexpr std::string_view kFileAttr = "file";
/// The marker used for character-data alternatives in mixed content.
inline constexpr std::string_view kPcdataMarker = "pcdata";

/// Persistence root for a doctype: "article" -> "Articles".
std::string RootNameFor(std::string_view doctype);

}  // namespace sgmlqdb::mapping

#endif  // SGMLQDB_MAPPING_NAMES_H_
