// Instance -> SGML: the inverse mapping the paper's footnote 1 and §6
// mention ("providing the means to update the document from the
// database"). Rebuilds a document tree from an element object by
// walking its value along the same structural rules the loader used,
// then serializes it.
//
// ID/IDREF attributes: the original identifier strings are not stored
// in the database (Fig. 3 keeps object references only), so the
// exporter synthesizes fresh identifiers ("id1", "id2", ...) for
// objects that are referenced.

#ifndef SGMLQDB_MAPPING_EXPORTER_H_
#define SGMLQDB_MAPPING_EXPORTER_H_

#include "base/status.h"
#include "om/database.h"
#include "sgml/document.h"
#include "sgml/dtd.h"

namespace sgmlqdb::mapping {

/// Rebuilds the document tree rooted at `root` (an object created by
/// the loader for a `dtd.doctype()`-mapped class).
Result<sgml::Document> ExportDocument(const om::Database& db,
                                      const sgml::Dtd& dtd,
                                      om::ObjectId root);

/// Convenience: export + serialize to normalized SGML text.
Result<std::string> ExportDocumentText(const om::Database& db,
                                       const sgml::Dtd& dtd,
                                       om::ObjectId root);

}  // namespace sgmlqdb::mapping

#endif  // SGMLQDB_MAPPING_EXPORTER_H_
