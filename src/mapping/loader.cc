#include "mapping/loader.h"

#include <map>
#include <optional>

#include "base/strutil.h"
#include "mapping/names.h"
#include "mapping/schema_compiler.h"
#include "om/typecheck.h"
#include "sgml/automaton.h"

namespace sgmlqdb::mapping {

using om::Database;
using om::ObjectId;
using om::Value;
using sgml::AttributeDef;
using sgml::ContentNode;
using sgml::DocNode;
using sgml::Dtd;
using sgml::ElementDef;
using sgml::Occurrence;

namespace {

/// A structural parse of an element's children against its content
/// model, expressed over child indices (no objects created while the
/// backtracking matcher runs).
struct Plan {
  enum class Kind { kChild, kList, kTuple, kNil };
  Kind kind = Kind::kNil;
  size_t child_index = 0;                              // kChild
  std::vector<Plan> elements;                          // kList
  std::vector<std::pair<std::string, Plan>> fields;    // kTuple

  static Plan Child(size_t i) {
    Plan p;
    p.kind = Kind::kChild;
    p.child_index = i;
    return p;
  }
  static Plan List(std::vector<Plan> elems) {
    Plan p;
    p.kind = Kind::kList;
    p.elements = std::move(elems);
    return p;
  }
  static Plan Tuple(std::vector<std::pair<std::string, Plan>> fields) {
    Plan p;
    p.kind = Kind::kTuple;
    p.fields = std::move(fields);
    return p;
  }
  static Plan Nil() { return Plan(); }
};

/// Matches element children against a content model, mirroring the
/// field naming of schema_compiler.cc.
class Matcher {
 public:
  explicit Matcher(const std::vector<const DocNode*>& kids) : kids_(kids) {}

  /// Matches a whole element-content model; consumes all children.
  std::optional<Plan> MatchContent(const ContentNode& model) {
    bool repeated = model.occurrence == Occurrence::kPlus ||
                    model.occurrence == Occurrence::kStar;
    if (repeated) {
      // One list entry per repetition of the group (the group itself
      // is matched with occurrence One), greedy longest.
      ContentNode group = model;
      group.occurrence = Occurrence::kOne;
      std::vector<Plan> items;
      size_t i = 0;
      while (i < kids_.size()) {
        std::optional<std::pair<size_t, Plan>> m =
            MatchGroupLongest(group, i, kids_.size());
        if (!m.has_value() || m->first == i) return std::nullopt;
        items.push_back(std::move(m->second));
        i = m->first;
      }
      if (items.empty() && model.occurrence == Occurrence::kPlus) {
        return std::nullopt;
      }
      // Field naming matches the schema compiler: plural element name
      // for a repeated element model, "items" otherwise.
      std::string field = model.kind == ContentNode::Kind::kElement
                              ? PluralFieldNameFor(model.element_name)
                              : "items";
      return Plan::Tuple({{field, Plan::List(std::move(items))}});
    }
    switch (model.kind) {
      case ContentNode::Kind::kSeq: {
        size_t counter = 1;
        std::vector<std::pair<std::string, Plan>> fields;
        if (!MatchItems(model.children, 0, 0, kids_.size(), &counter,
                        &fields)) {
          return std::nullopt;
        }
        return Plan::Tuple(std::move(fields));
      }
      case ContentNode::Kind::kChoice:
      case ContentNode::Kind::kAll: {
        std::optional<Plan> p = MatchChoice(model, 0, kids_.size());
        if (!p.has_value()) return std::nullopt;
        return p;
      }
      case ContentNode::Kind::kElement: {
        size_t counter = 1;
        std::vector<std::pair<std::string, Plan>> fields;
        if (!MatchItems({model}, 0, 0, kids_.size(), &counter, &fields)) {
          return std::nullopt;
        }
        return Plan::Tuple(std::move(fields));
      }
      default:
        return std::nullopt;
    }
  }

 private:
  bool ChildIs(size_t i, const std::string& name) const {
    return i < kids_.size() && kids_[i]->name == name;
  }

  /// Matches `items[idx..]` against children [i, end).
  bool MatchItems(const std::vector<ContentNode>& items, size_t idx,
                  size_t i, size_t end, size_t* counter,
                  std::vector<std::pair<std::string, Plan>>* fields) {
    if (idx == items.size()) return i == end;
    const ContentNode& item = items[idx];
    if (item.kind == ContentNode::Kind::kElement) {
      switch (item.occurrence) {
        case Occurrence::kOne: {
          if (!ChildIs(i, item.element_name) || i >= end) return false;
          fields->emplace_back(FieldNameFor(item.element_name),
                               Plan::Child(i));
          if (MatchItems(items, idx + 1, i + 1, end, counter, fields)) {
            return true;
          }
          fields->pop_back();
          return false;
        }
        case Occurrence::kOpt: {
          if (i < end && ChildIs(i, item.element_name)) {
            fields->emplace_back(FieldNameFor(item.element_name),
                                 Plan::Child(i));
            if (MatchItems(items, idx + 1, i + 1, end, counter, fields)) {
              return true;
            }
            fields->pop_back();
          }
          fields->emplace_back(FieldNameFor(item.element_name), Plan::Nil());
          if (MatchItems(items, idx + 1, i, end, counter, fields)) {
            return true;
          }
          fields->pop_back();
          return false;
        }
        case Occurrence::kPlus:
        case Occurrence::kStar: {
          size_t max = i;
          while (max < end && ChildIs(max, item.element_name)) ++max;
          size_t min =
              item.occurrence == Occurrence::kPlus ? i + 1 : i;
          for (size_t stop = max; stop + 1 > min; --stop) {
            std::vector<Plan> elems;
            for (size_t k = i; k < stop; ++k) elems.push_back(Plan::Child(k));
            fields->emplace_back(PluralFieldNameFor(item.element_name),
                                 Plan::List(std::move(elems)));
            if (MatchItems(items, idx + 1, stop, end, counter, fields)) {
              return true;
            }
            fields->pop_back();
            if (stop == 0) break;  // size_t underflow guard
          }
          return false;
        }
      }
      return false;
    }
    if (item.kind == ContentNode::Kind::kPcdata) {
      // Text is handled outside structural matching.
      return MatchItems(items, idx + 1, i, end, counter, fields);
    }
    // Nested group item: system-supplied attribute name, mirroring the
    // compiler's counter.
    std::string field_name = SystemMarker((*counter)++);
    bool repeated = item.occurrence == Occurrence::kPlus ||
                    item.occurrence == Occurrence::kStar;
    if (repeated) {
      // Greedy repetition of the group, then continue.
      std::vector<Plan> elems;
      size_t pos = i;
      while (pos < end) {
        std::optional<std::pair<size_t, Plan>> m =
            MatchGroupLongest(item, pos, end);
        if (!m.has_value() || m->first == pos) break;
        elems.push_back(std::move(m->second));
        pos = m->first;
      }
      if (item.occurrence == Occurrence::kPlus && elems.empty()) {
        *counter -= 1;
        return false;
      }
      fields->emplace_back(field_name, Plan::List(std::move(elems)));
      if (MatchItems(items, idx + 1, pos, end, counter, fields)) return true;
      fields->pop_back();
      *counter -= 1;
      return false;
    }
    // Single (or optional) group: try every split point, longest
    // first.
    for (size_t split = end + 1; split-- > i;) {
      std::optional<Plan> g = MatchGroupExact(item, i, split);
      if (!g.has_value()) {
        if (split == i && item.occurrence == Occurrence::kOpt) {
          fields->emplace_back(field_name, Plan::Nil());
          if (MatchItems(items, idx + 1, i, end, counter, fields)) {
            return true;
          }
          fields->pop_back();
        }
        continue;
      }
      fields->emplace_back(field_name, std::move(*g));
      if (MatchItems(items, idx + 1, split, end, counter, fields)) {
        return true;
      }
      fields->pop_back();
    }
    *counter -= 1;
    return false;
  }

  /// Matches a group against exactly [i, end).
  std::optional<Plan> MatchGroupExact(const ContentNode& group, size_t i,
                                      size_t end) {
    switch (group.kind) {
      case ContentNode::Kind::kSeq: {
        size_t counter = 1;
        std::vector<std::pair<std::string, Plan>> fields;
        if (!MatchItems(group.children, 0, i, end, &counter, &fields)) {
          return std::nullopt;
        }
        return Plan::Tuple(std::move(fields));
      }
      case ContentNode::Kind::kChoice:
      case ContentNode::Kind::kAll:
        return MatchChoice(group, i, end);
      case ContentNode::Kind::kElement: {
        if (group.occurrence == Occurrence::kOne) {
          if (end == i + 1 && ChildIs(i, group.element_name)) {
            return Plan::Child(i);
          }
          return std::nullopt;
        }
        // Repeated element as a whole group.
        std::vector<Plan> elems;
        for (size_t k = i; k < end; ++k) {
          if (!ChildIs(k, group.element_name)) return std::nullopt;
          elems.push_back(Plan::Child(k));
        }
        if (elems.empty() && group.occurrence == Occurrence::kPlus) {
          return std::nullopt;
        }
        return Plan::List(std::move(elems));
      }
      default:
        return std::nullopt;
    }
  }

  /// Longest match of a group starting at `i` (for repetitions).
  std::optional<std::pair<size_t, Plan>> MatchGroupLongest(
      const ContentNode& group, size_t i, size_t end) {
    for (size_t stop = end + 1; stop-- > i;) {
      std::optional<Plan> p = MatchGroupExact(group, i, stop);
      if (p.has_value()) return std::make_pair(stop, std::move(*p));
      if (stop == i) break;
    }
    return std::nullopt;
  }

  /// Matches a choice group over exactly [i, end): the marked-union
  /// value of the first arm that fits. Marker naming mirrors
  /// UnionForChoice in schema_compiler.cc.
  std::optional<Plan> MatchChoice(const ContentNode& node, size_t i,
                                  size_t end) {
    ContentNode choice = node;
    if (node.kind == ContentNode::Kind::kAll) {
      auto expanded = sgml::ExpandAllGroups(node);
      if (!expanded.ok()) return std::nullopt;
      choice = std::move(expanded).value();
    }
    bool all_plain = true;
    for (const ContentNode& arm : choice.children) {
      if (arm.kind != ContentNode::Kind::kElement ||
          arm.occurrence != Occurrence::kOne) {
        all_plain = false;
        break;
      }
    }
    size_t k = 1;
    for (const ContentNode& arm : choice.children) {
      std::string marker = all_plain ? FieldNameFor(arm.element_name)
                                     : SystemMarker(k);
      ++k;
      std::optional<Plan> p = MatchGroupExact(arm, i, end);
      if (p.has_value()) {
        return Plan::Tuple({{marker, std::move(*p)}});
      }
    }
    return std::nullopt;
  }

  const std::vector<const DocNode*>& kids_;
};

/// Pending ID/IDREF fixups collected during the first pass.
struct Fixups {
  // id value -> object carrying the ID.
  std::map<std::string, ObjectId> id_to_oid;
  // (referencing oid, attribute, referenced id).
  struct Ref {
    ObjectId source;
    std::string attribute;
    std::string target_id;
    bool is_list;  // IDREFS
  };
  std::vector<Ref> refs;
  // oid -> name of its ID attribute (for back-reference lists).
  std::map<uint64_t, std::string> id_attr_of;
};

class Loader {
 public:
  Loader(const Dtd& dtd, Database* db) : dtd_(dtd), db_(db) {}

  Result<LoadedDocument> Load(const sgml::Document& doc) {
    SGMLQDB_ASSIGN_OR_RETURN(ObjectId root, LoadElement(doc.root));
    SGMLQDB_RETURN_IF_ERROR(ResolveReferences());
    LoadedDocument out;
    out.root = root;
    out.element_texts = std::move(element_texts_);
    // Append to the doctype's persistence root when present.
    const std::string root_name = RootNameFor(dtd_.doctype());
    if (db_->schema().FindName(root_name) != nullptr &&
        doc.root.name == dtd_.doctype()) {
      // In-place append when the database uniquely owns the root list
      // (copy otherwise), so loading N documents is O(N) — the old
      // copy-the-whole-list-per-document path made bulk loads O(N²).
      Status appended =
          db_->AppendToBoundList(root_name, Value::Object(root));
      if (!appended.ok()) {
        // First document (root unbound) or bound to a non-list: start
        // a fresh one-element list.
        SGMLQDB_RETURN_IF_ERROR(
            db_->BindName(root_name, Value::List({Value::Object(root)})));
      }
    }
    return out;
  }

 private:
  Result<ObjectId> LoadElement(const DocNode& node) {
    const ElementDef* def = dtd_.FindElement(node.name);
    if (def == nullptr) {
      return Status::NotFound("element '" + node.name +
                              "' has no DTD declaration");
    }
    // Create the object first so children loaded during value
    // construction can refer back (not needed today, but keeps oid
    // order = document order).
    SGMLQDB_ASSIGN_OR_RETURN(
        ObjectId oid, db_->NewObject(ClassNameFor(node.name), Value::Nil()));
    element_texts_.emplace_back(oid, node.InnerText());

    std::vector<std::pair<std::string, Value>> fields;
    ElementShape shape = ShapeOf(*def);
    switch (shape) {
      case ElementShape::kText:
        fields.emplace_back(std::string(kContentAttr),
                            Value::String(node.InnerText()));
        break;
      case ElementShape::kBitmap: {
        // `file` comes from an ENTITY attribute when present.
        std::string file;
        if (const std::string* v = node.FindAttribute(kFileAttr)) {
          const sgml::EntityDef* e = dtd_.FindEntity(*v);
          file = (e != nullptr && e->is_external) ? e->system_id : *v;
        }
        fields.emplace_back(std::string(kFileAttr), Value::String(file));
        break;
      }
      case ElementShape::kMixed: {
        std::vector<Value> items;
        for (const DocNode& c : node.children) {
          if (c.is_text()) {
            items.push_back(Value::Tuple(
                {{std::string(kPcdataMarker), Value::String(c.text)}}));
          } else {
            SGMLQDB_ASSIGN_OR_RETURN(ObjectId child, LoadElement(c));
            items.push_back(Value::Tuple(
                {{FieldNameFor(c.name), Value::Object(child)}}));
          }
        }
        fields.emplace_back("items", Value::List(std::move(items)));
        break;
      }
      case ElementShape::kStruct: {
        std::vector<const DocNode*> kids;
        for (const DocNode& c : node.children) {
          if (!c.is_text()) kids.push_back(&c);
        }
        Matcher matcher(kids);
        std::optional<Plan> plan = matcher.MatchContent(def->content);
        if (!plan.has_value()) {
          return Status::Internal(
              "children of element '" + node.name +
              "' do not match its content model " + def->content.ToString() +
              " (document not validated?)");
        }
        SGMLQDB_ASSIGN_OR_RETURN(Value v, Materialize(*plan, kids));
        if (v.kind() == om::ValueKind::kTuple && !plan->fields.empty() &&
            plan->kind == Plan::Kind::kTuple) {
          for (size_t i = 0; i < v.size(); ++i) {
            fields.emplace_back(v.FieldName(i), v.FieldValue(i));
          }
        } else {
          // Union-typed content (choice at top level): the value IS
          // the marked union; attributes are rejected by the compiler
          // for this shape, so store it directly.
          SGMLQDB_RETURN_IF_ERROR(db_->SetObjectValue(oid, v));
          SGMLQDB_RETURN_IF_ERROR(
              RegisterAttributes(*def, node, oid, nullptr));
          return oid;
        }
        break;
      }
    }
    SGMLQDB_RETURN_IF_ERROR(RegisterAttributes(*def, node, oid, &fields));
    SGMLQDB_RETURN_IF_ERROR(
        db_->SetObjectValue(oid, Value::Tuple(std::move(fields))));
    return oid;
  }

  /// Appends ATTLIST attribute fields (when `fields` is non-null) and
  /// records ID/IDREF bookkeeping.
  Status RegisterAttributes(
      const ElementDef& def, const DocNode& node, ObjectId oid,
      std::vector<std::pair<std::string, Value>>* fields) {
    for (const AttributeDef& a : def.attributes) {
      const std::string* raw = node.FindAttribute(a.name);
      switch (a.type) {
        case AttributeDef::DeclaredType::kId: {
          if (raw != nullptr) {
            fixups_.id_to_oid[*raw] = oid;
          }
          fixups_.id_attr_of[oid.id()] = a.name;
          if (fields != nullptr) {
            fields->emplace_back(a.name, Value::List({}));
          }
          break;
        }
        case AttributeDef::DeclaredType::kIdref: {
          if (raw != nullptr) {
            fixups_.refs.push_back(
                Fixups::Ref{oid, a.name, *raw, /*is_list=*/false});
          }
          if (fields != nullptr) {
            fields->emplace_back(a.name, Value::Nil());
          }
          break;
        }
        case AttributeDef::DeclaredType::kIdrefs: {
          if (raw != nullptr) {
            for (const std::string& part : Split(*raw, ' ')) {
              if (part.empty()) continue;
              fixups_.refs.push_back(
                  Fixups::Ref{oid, a.name, part, /*is_list=*/true});
            }
          }
          if (fields != nullptr) {
            fields->emplace_back(a.name, Value::List({}));
          }
          break;
        }
        case AttributeDef::DeclaredType::kEntity: {
          // Resolved by the kBitmap shape when it shadows `file`;
          // otherwise store the entity's expansion.
          if (fields != nullptr) {
            bool shadowed = false;
            for (const auto& [n, v] : *fields) {
              if (n == a.name) shadowed = true;
            }
            if (!shadowed) {
              std::string value;
              if (raw != nullptr) {
                const sgml::EntityDef* e = dtd_.FindEntity(*raw);
                value = (e != nullptr && e->is_external) ? e->system_id
                        : (e != nullptr)                 ? e->replacement
                                                         : *raw;
              }
              fields->emplace_back(
                  a.name, raw != nullptr ? Value::String(value)
                                         : Value::Nil());
            }
          }
          break;
        }
        default: {
          if (fields != nullptr) {
            bool shadowed = false;
            for (const auto& [n, v] : *fields) {
              if (n == a.name) shadowed = true;
            }
            if (!shadowed) {
              fields->emplace_back(a.name, raw != nullptr
                                               ? Value::String(*raw)
                                               : Value::Nil());
            }
          }
          break;
        }
      }
    }
    return Status::OK();
  }

  Result<Value> Materialize(const Plan& plan,
                            const std::vector<const DocNode*>& kids) {
    switch (plan.kind) {
      case Plan::Kind::kNil:
        return Value::Nil();
      case Plan::Kind::kChild: {
        SGMLQDB_ASSIGN_OR_RETURN(ObjectId oid,
                                 LoadElement(*kids[plan.child_index]));
        return Value::Object(oid);
      }
      case Plan::Kind::kList: {
        std::vector<Value> elems;
        for (const Plan& p : plan.elements) {
          SGMLQDB_ASSIGN_OR_RETURN(Value v, Materialize(p, kids));
          elems.push_back(std::move(v));
        }
        return Value::List(std::move(elems));
      }
      case Plan::Kind::kTuple: {
        std::vector<std::pair<std::string, Value>> fields;
        for (const auto& [name, p] : plan.fields) {
          SGMLQDB_ASSIGN_OR_RETURN(Value v, Materialize(p, kids));
          fields.emplace_back(name, std::move(v));
        }
        return Value::Tuple(std::move(fields));
      }
    }
    return Status::Internal("unhandled plan kind");
  }

  Status ResolveReferences() {
    for (const Fixups::Ref& ref : fixups_.refs) {
      auto it = fixups_.id_to_oid.find(ref.target_id);
      if (it == fixups_.id_to_oid.end()) {
        return Status::NotFound("IDREF '" + ref.target_id +
                                "' has no matching ID");
      }
      ObjectId target = it->second;
      // Set the forward reference on the source.
      SGMLQDB_ASSIGN_OR_RETURN(Value src_val, db_->Deref(ref.source));
      SGMLQDB_ASSIGN_OR_RETURN(
          Value new_src,
          SetTupleField(src_val, ref.attribute, Value::Object(target),
                        ref.is_list));
      SGMLQDB_RETURN_IF_ERROR(db_->SetObjectValue(ref.source, new_src));
      // Append the back reference on the target's ID attribute.
      auto id_attr = fixups_.id_attr_of.find(target.id());
      if (id_attr != fixups_.id_attr_of.end()) {
        SGMLQDB_ASSIGN_OR_RETURN(Value tgt_val, db_->Deref(target));
        SGMLQDB_ASSIGN_OR_RETURN(
            Value new_tgt,
            SetTupleField(tgt_val, id_attr->second,
                          Value::Object(ref.source), /*append=*/true));
        SGMLQDB_RETURN_IF_ERROR(db_->SetObjectValue(target, new_tgt));
      }
    }
    return Status::OK();
  }

  /// Returns `tuple` with `attr` replaced by `v` (append=false) or
  /// with `v` appended to the attr's list (append=true).
  static Result<Value> SetTupleField(const Value& tuple,
                                     const std::string& attr, Value v,
                                     bool append) {
    if (tuple.kind() != om::ValueKind::kTuple) {
      return Status::Internal("cannot set attribute on non-tuple");
    }
    std::vector<std::pair<std::string, Value>> fields;
    bool found = false;
    for (size_t i = 0; i < tuple.size(); ++i) {
      Value fv = tuple.FieldValue(i);
      if (tuple.FieldName(i) == attr) {
        found = true;
        if (append) {
          std::vector<Value> elems;
          if (fv.kind() == om::ValueKind::kList) {
            for (size_t k = 0; k < fv.size(); ++k) {
              elems.push_back(fv.Element(k));
            }
          }
          elems.push_back(v);
          fv = Value::List(std::move(elems));
        } else {
          fv = v;
        }
      }
      fields.emplace_back(tuple.FieldName(i), std::move(fv));
    }
    if (!found) {
      return Status::Internal("attribute '" + attr + "' absent in value");
    }
    return Value::Tuple(std::move(fields));
  }

  const Dtd& dtd_;
  Database* db_;
  Fixups fixups_;
  std::vector<std::pair<ObjectId, std::string>> element_texts_;
};

}  // namespace

Result<LoadedDocument> LoadDocument(const Dtd& dtd,
                                    const sgml::Document& doc,
                                    Database* db) {
  return Loader(dtd, db).Load(doc);
}

Result<LoadedDocument> LoadDocumentText(const Dtd& dtd,
                                        std::string_view sgml_text,
                                        Database* db) {
  SGMLQDB_ASSIGN_OR_RETURN(sgml::Document doc,
                           sgml::ParseDocument(dtd, sgml_text));
  SGMLQDB_RETURN_IF_ERROR(sgml::ValidateDocument(dtd, doc));
  return LoadDocument(dtd, doc, db);
}

}  // namespace sgmlqdb::mapping
