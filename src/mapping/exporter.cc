#include "mapping/exporter.h"

#include <map>
#include <set>

#include "mapping/names.h"
#include "mapping/schema_compiler.h"

namespace sgmlqdb::mapping {

using om::Database;
using om::ObjectId;
using om::Value;
using om::ValueKind;
using sgml::AttributeDef;
using sgml::DocNode;
using sgml::Dtd;
using sgml::ElementDef;

namespace {

class Exporter {
 public:
  Exporter(const Database& db, const Dtd& dtd) : db_(db), dtd_(dtd) {
    for (const ElementDef& e : dtd.elements()) {
      element_of_class_[ClassNameFor(e.name)] = e.name;
    }
  }

  Result<sgml::Document> Run(ObjectId root) {
    SGMLQDB_RETURN_IF_ERROR(AssignIds(root));
    sgml::Document doc;
    SGMLQDB_ASSIGN_OR_RETURN(doc.root, ExportElement(root));
    return doc;
  }

 private:
  Result<const ElementDef*> DefFor(ObjectId oid) const {
    const std::string* cls = db_.ClassOf(oid);
    if (cls == nullptr) {
      return Status::NotFound("dangling oid " + std::to_string(oid.id()));
    }
    auto it = element_of_class_.find(*cls);
    if (it == element_of_class_.end()) {
      return Status::NotFound("class '" + *cls +
                              "' is not the image of a DTD element");
    }
    const ElementDef* def = dtd_.FindElement(it->second);
    if (def == nullptr) {
      return Status::Internal("element map out of sync");
    }
    return def;
  }

  /// First pass: assign synthetic ids to every object referenced from
  /// an IDREF(S) attribute anywhere in the subtree.
  Status AssignIds(ObjectId oid) {
    if (!visited_.insert(oid.id()).second) return Status::OK();
    SGMLQDB_ASSIGN_OR_RETURN(const ElementDef* def, DefFor(oid));
    SGMLQDB_ASSIGN_OR_RETURN(Value v, db_.Deref(oid));
    for (const AttributeDef& a : def->attributes) {
      if (a.type != AttributeDef::DeclaredType::kIdref &&
          a.type != AttributeDef::DeclaredType::kIdrefs) {
        continue;
      }
      std::optional<Value> f = v.FindField(a.name);
      if (!f.has_value()) continue;
      std::vector<Value> targets;
      if (f->kind() == ValueKind::kObject) targets.push_back(*f);
      if (f->kind() == ValueKind::kList) {
        for (size_t i = 0; i < f->size(); ++i) {
          targets.push_back(f->Element(i));
        }
      }
      for (const Value& t : targets) {
        if (t.kind() != ValueKind::kObject) continue;
        uint64_t id = t.AsObject().id();
        if (id_of_.count(id) == 0) {
          id_of_[id] = "id" + std::to_string(next_id_++);
        }
      }
    }
    // Recurse into structurally reachable objects.
    std::vector<Value> work = {v};
    while (!work.empty()) {
      Value cur = work.back();
      work.pop_back();
      switch (cur.kind()) {
        case ValueKind::kObject: {
          // Only descend into structural children, not IDREF targets:
          // a target inside the subtree is reached structurally
          // anyway, one outside must not be exported.
          break;
        }
        case ValueKind::kTuple:
          for (size_t i = 0; i < cur.size(); ++i) {
            Value fv = cur.FieldValue(i);
            if (fv.kind() == ValueKind::kObject &&
                !IsReferenceAttribute(*def, cur.FieldName(i))) {
              SGMLQDB_RETURN_IF_ERROR(AssignIds(fv.AsObject()));
            } else {
              work.push_back(fv);
            }
          }
          break;
        case ValueKind::kList:
        case ValueKind::kSet:
          for (size_t i = 0; i < cur.size(); ++i) {
            Value e = cur.Element(i);
            if (e.kind() == ValueKind::kObject) {
              SGMLQDB_RETURN_IF_ERROR(AssignIds(e.AsObject()));
            } else {
              work.push_back(e);
            }
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }

  static bool IsReferenceAttribute(const ElementDef& def,
                                   const std::string& field) {
    const AttributeDef* a = def.FindAttribute(field);
    return a != nullptr && (a->type == AttributeDef::DeclaredType::kIdref ||
                            a->type == AttributeDef::DeclaredType::kIdrefs ||
                            a->type == AttributeDef::DeclaredType::kId);
  }

  Result<DocNode> ExportElement(ObjectId oid) {
    SGMLQDB_ASSIGN_OR_RETURN(const ElementDef* def, DefFor(oid));
    SGMLQDB_ASSIGN_OR_RETURN(Value v, db_.Deref(oid));
    DocNode node = DocNode::Element(def->name);

    // Attributes.
    for (const AttributeDef& a : def->attributes) {
      std::optional<Value> f = v.FindField(a.name);
      switch (a.type) {
        case AttributeDef::DeclaredType::kId: {
          auto it = id_of_.find(oid.id());
          if (it != id_of_.end()) {
            node.attributes.emplace_back(a.name, it->second);
          }
          break;
        }
        case AttributeDef::DeclaredType::kIdref: {
          if (f.has_value() && f->kind() == ValueKind::kObject) {
            node.attributes.emplace_back(a.name,
                                         id_of_[f->AsObject().id()]);
          }
          break;
        }
        case AttributeDef::DeclaredType::kIdrefs: {
          if (f.has_value() && f->kind() == ValueKind::kList &&
              f->size() > 0) {
            std::string joined;
            for (size_t i = 0; i < f->size(); ++i) {
              if (i > 0) joined += ' ';
              joined += id_of_[f->Element(i).AsObject().id()];
            }
            node.attributes.emplace_back(a.name, joined);
          }
          break;
        }
        case AttributeDef::DeclaredType::kEntity:
          // Lossy: the entity name is not stored; omitted on export.
          break;
        default: {
          if (f.has_value() && f->kind() == ValueKind::kString &&
              !f->AsString().empty()) {
            node.attributes.emplace_back(a.name, f->AsString());
          }
          break;
        }
      }
    }

    // Content.
    switch (ShapeOf(*def)) {
      case ElementShape::kText: {
        std::optional<Value> content = v.FindField(kContentAttr);
        if (content.has_value() && content->kind() == ValueKind::kString &&
            !content->AsString().empty()) {
          node.children.push_back(DocNode::Text(content->AsString()));
        }
        break;
      }
      case ElementShape::kBitmap:
        break;  // EMPTY
      case ElementShape::kMixed: {
        std::optional<Value> items = v.FindField("items");
        if (items.has_value() && items->kind() == ValueKind::kList) {
          for (size_t i = 0; i < items->size(); ++i) {
            Value item = items->Element(i);
            if (item.kind() != ValueKind::kTuple || item.size() != 1) {
              continue;
            }
            if (item.FieldName(0) == kPcdataMarker) {
              node.children.push_back(
                  DocNode::Text(item.FieldValue(0).AsString()));
            } else {
              SGMLQDB_RETURN_IF_ERROR(
                  EmitValue(item.FieldValue(0), *def, &node));
            }
          }
        }
        break;
      }
      case ElementShape::kStruct: {
        if (v.kind() == ValueKind::kTuple) {
          for (size_t i = 0; i < v.size(); ++i) {
            if (def->FindAttribute(v.FieldName(i)) != nullptr) {
              continue;  // ATTLIST attribute, already emitted
            }
            SGMLQDB_RETURN_IF_ERROR(EmitValue(v.FieldValue(i), *def, &node));
          }
        }
        break;
      }
    }
    return node;
  }

  /// Emits a structural value as children of `node`: objects become
  /// child elements, lists/tuples flatten in order, nil vanishes.
  Status EmitValue(const Value& v, const ElementDef& def, DocNode* node) {
    switch (v.kind()) {
      case ValueKind::kNil:
        return Status::OK();
      case ValueKind::kObject: {
        SGMLQDB_ASSIGN_OR_RETURN(DocNode child, ExportElement(v.AsObject()));
        node->children.push_back(std::move(child));
        return Status::OK();
      }
      case ValueKind::kList:
      case ValueKind::kSet: {
        for (size_t i = 0; i < v.size(); ++i) {
          SGMLQDB_RETURN_IF_ERROR(EmitValue(v.Element(i), def, node));
        }
        return Status::OK();
      }
      case ValueKind::kTuple: {
        for (size_t i = 0; i < v.size(); ++i) {
          SGMLQDB_RETURN_IF_ERROR(EmitValue(v.FieldValue(i), def, node));
        }
        return Status::OK();
      }
      case ValueKind::kString:
        if (!v.AsString().empty()) {
          node->children.push_back(DocNode::Text(v.AsString()));
        }
        return Status::OK();
      default:
        return Status::Internal("unexpected value in structural content: " +
                                v.ToString());
    }
  }

  const Database& db_;
  const Dtd& dtd_;
  std::map<std::string, std::string> element_of_class_;
  std::map<uint64_t, std::string> id_of_;
  std::set<uint64_t> visited_;
  size_t next_id_ = 1;
};

}  // namespace

Result<sgml::Document> ExportDocument(const Database& db, const Dtd& dtd,
                                      ObjectId root) {
  return Exporter(db, dtd).Run(root);
}

Result<std::string> ExportDocumentText(const Database& db, const Dtd& dtd,
                                       ObjectId root) {
  SGMLQDB_ASSIGN_OR_RETURN(sgml::Document doc, ExportDocument(db, dtd, root));
  return sgml::SerializeDocument(doc);
}

}  // namespace sgmlqdb::mapping
