// Document instance -> database objects (paper §3: "map ... a
// document instance into corresponding objects and values", in the
// spirit of annotating the grammar with semantic actions).
//
// Every element becomes an object of its mapped class; the object's
// value follows the structural rules of schema_compiler.h. ID/IDREF
// attributes are resolved in a second pass into object references
// (IDREF -> the referenced object; ID -> the list of referencing
// objects, as in Fig. 3's `private label: list(Object)`).

#ifndef SGMLQDB_MAPPING_LOADER_H_
#define SGMLQDB_MAPPING_LOADER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "om/database.h"
#include "sgml/document.h"
#include "sgml/dtd.h"

namespace sgmlqdb::mapping {

struct LoadedDocument {
  /// The object created for the root element.
  om::ObjectId root;
  /// (oid, inner text) for every element object, in document order —
  /// feeds the paper's `text()` inverse mapping and the full-text
  /// index.
  std::vector<std::pair<om::ObjectId, std::string>> element_texts;
};

/// Loads a parsed document into `db`, whose schema must be (or
/// contain) the CompileDtdToSchema image of `dtd`. Also appends the
/// new root object to the doctype's persistence root list (e.g.
/// `Articles`) when that root exists in the schema.
Result<LoadedDocument> LoadDocument(const sgml::Dtd& dtd,
                                    const sgml::Document& doc,
                                    om::Database* db);

/// Convenience: parse + validate + load.
Result<LoadedDocument> LoadDocumentText(const sgml::Dtd& dtd,
                                        std::string_view sgml_text,
                                        om::Database* db);

}  // namespace sgmlqdb::mapping

#endif  // SGMLQDB_MAPPING_LOADER_H_
