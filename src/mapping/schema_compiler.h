// DTD -> O2 schema compilation (paper §3, Figure 1 -> Figure 3).
//
// Rules implemented (each is the paper's, with the completion choices
// documented in DESIGN.md):
//  * element -> class, named by ClassNameFor;
//  * #PCDATA elements inherit Text (type [content: string]);
//  * EMPTY elements inherit Bitmap (type [file: string]);
//  * "," sequences -> ordered tuples; component names per names.h;
//  * "|" choices -> marked unions (element-name markers when every
//    alternative is a plain element, system markers a1.. otherwise);
//  * "&" groups -> marked union of the permutation tuples (§5.3
//    Letters example);
//  * "+" / "*" -> lists ( "+" adds a non-empty-list constraint, "?" a
//    nilable attribute, plain occurrence a not-nil constraint);
//  * mixed content -> [items: [(pcdata: string + elem: Class + ...)]];
//  * ATTLIST attributes -> private attributes appended after the
//    structural ones: enumerated/CDATA/NMTOKEN/ENTITY -> string (with
//    an in-set constraint for enumerations), IDREF -> any (resolved to
//    the referenced object at load), ID -> [any] (back-references),
//    IDREFS -> [any]; #REQUIRED adds a not-nil constraint;
//  * persistence root RootNameFor(doctype): list(DoctypeClass).

#ifndef SGMLQDB_MAPPING_SCHEMA_COMPILER_H_
#define SGMLQDB_MAPPING_SCHEMA_COMPILER_H_

#include "base/status.h"
#include "om/schema.h"
#include "sgml/dtd.h"

namespace sgmlqdb::mapping {

/// Compiles a DTD into a validated schema.
Result<om::Schema> CompileDtdToSchema(const sgml::Dtd& dtd);

/// The structural kind a DTD element maps to (shared with the loader
/// and exporter so the three traversals agree).
enum class ElementShape {
  kText,     // #PCDATA only -> inherits Text
  kBitmap,   // EMPTY        -> inherits Bitmap
  kMixed,    // mixed content
  kStruct,   // element content (tuple / union / list-of)
};

ElementShape ShapeOf(const sgml::ElementDef& def);

}  // namespace sgmlqdb::mapping

#endif  // SGMLQDB_MAPPING_SCHEMA_COMPILER_H_
