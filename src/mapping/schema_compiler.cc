#include "mapping/schema_compiler.h"

#include <vector>

#include "mapping/names.h"
#include "om/subtype.h"
#include "sgml/automaton.h"

namespace sgmlqdb::mapping {

using om::Constraint;
using om::Schema;
using om::Type;
using sgml::AttributeDef;
using sgml::ContentNode;
using sgml::Dtd;
using sgml::ElementDef;
using sgml::Occurrence;

ElementShape ShapeOf(const ElementDef& def) {
  if (def.content.IsEmptyDecl()) return ElementShape::kBitmap;
  if (def.content.kind == ContentNode::Kind::kPcdata) {
    return ElementShape::kText;
  }
  if (def.content.AllowsPcdata()) return ElementShape::kMixed;
  return ElementShape::kStruct;
}

namespace {

/// One structural attribute derived from a content-model component.
struct FieldSpec {
  std::string name;
  Type type;
  bool not_nil = false;
  bool non_empty = false;
};

class ElementTypeBuilder {
 public:
  /// Translates a content-model group into attribute specs (sequence
  /// context) or a whole type (choice / repetition contexts).
  Result<std::vector<FieldSpec>> FieldsForItems(
      const std::vector<ContentNode>& items) {
    std::vector<FieldSpec> fields;
    for (const ContentNode& item : items) {
      SGMLQDB_ASSIGN_OR_RETURN(FieldSpec f, FieldForItem(item));
      for (const FieldSpec& existing : fields) {
        if (existing.name == f.name) {
          return Status::Unsupported(
              "content model repeats component '" + f.name +
              "' in one sequence; the mapping cannot derive distinct "
              "attribute names");
        }
      }
      fields.push_back(std::move(f));
    }
    return fields;
  }

  Result<FieldSpec> FieldForItem(const ContentNode& item) {
    FieldSpec f;
    if (item.kind == ContentNode::Kind::kElement) {
      Type cls = Type::Class(ClassNameFor(item.element_name));
      switch (item.occurrence) {
        case Occurrence::kOne:
          f.name = FieldNameFor(item.element_name);
          f.type = cls;
          f.not_nil = true;
          break;
        case Occurrence::kOpt:
          f.name = FieldNameFor(item.element_name);
          f.type = cls;
          break;
        case Occurrence::kPlus:
          f.name = PluralFieldNameFor(item.element_name);
          f.type = Type::List(cls);
          f.non_empty = true;
          break;
        case Occurrence::kStar:
          f.name = PluralFieldNameFor(item.element_name);
          f.type = Type::List(cls);
          break;
      }
      return f;
    }
    if (item.kind == ContentNode::Kind::kPcdata) {
      f.name = std::string(kContentAttr);
      f.type = Type::String();
      return f;
    }
    // Nested group: system-supplied attribute name.
    SGMLQDB_ASSIGN_OR_RETURN(Type inner, TypeForGroup(item));
    f.name = SystemMarker(next_system_field_++);
    switch (item.occurrence) {
      case Occurrence::kOne:
        f.type = inner;
        break;
      case Occurrence::kOpt:
        f.type = inner;
        break;
      case Occurrence::kPlus:
        f.type = Type::List(inner);
        f.non_empty = true;
        break;
      case Occurrence::kStar:
        f.type = Type::List(inner);
        break;
    }
    return f;
  }

  /// Type of a group node, ignoring the group's own occurrence.
  Result<Type> TypeForGroup(const ContentNode& node) {
    switch (node.kind) {
      case ContentNode::Kind::kSeq: {
        SGMLQDB_ASSIGN_OR_RETURN(std::vector<FieldSpec> fields,
                                 FieldsForItems(node.children));
        return TupleOf(fields);
      }
      case ContentNode::Kind::kChoice:
        return UnionForChoice(node);
      case ContentNode::Kind::kAll: {
        SGMLQDB_ASSIGN_OR_RETURN(ContentNode expanded,
                                 sgml::ExpandAllGroups(node));
        return UnionForChoice(expanded);
      }
      case ContentNode::Kind::kElement:
        return Type::Class(ClassNameFor(node.element_name));
      case ContentNode::Kind::kPcdata:
        return Type::String();
      case ContentNode::Kind::kEmpty:
        return Status::Internal("EMPTY inside a model group");
    }
    return Status::Internal("unhandled content node kind");
  }

  /// Union type for a choice group. When every alternative is a plain
  /// element with occurrence One, markers are the element field names
  /// (class Body in Fig. 3); otherwise system markers a1.. (Section).
  Result<Type> UnionForChoice(const ContentNode& node) {
    bool all_plain = true;
    for (const ContentNode& arm : node.children) {
      if (arm.kind != ContentNode::Kind::kElement ||
          arm.occurrence != Occurrence::kOne) {
        all_plain = false;
        break;
      }
    }
    std::vector<std::pair<std::string, Type>> alts;
    size_t k = 1;
    for (const ContentNode& arm : node.children) {
      if (all_plain) {
        alts.emplace_back(FieldNameFor(arm.element_name),
                          Type::Class(ClassNameFor(arm.element_name)));
        continue;
      }
      SGMLQDB_ASSIGN_OR_RETURN(Type arm_type, TypeForArm(arm));
      alts.emplace_back(SystemMarker(k++), arm_type);
    }
    return Type::Union(std::move(alts));
  }

  /// Type for one union arm: a sequence arm becomes a tuple; an
  /// element arm its class (with its occurrence applied).
  Result<Type> TypeForArm(const ContentNode& arm) {
    if (arm.kind == ContentNode::Kind::kElement) {
      Type cls = Type::Class(ClassNameFor(arm.element_name));
      if (arm.occurrence == Occurrence::kPlus ||
          arm.occurrence == Occurrence::kStar) {
        return Type::List(cls);
      }
      return cls;
    }
    // Each arm builds its own tuple from scratch (system field
    // counters are per arm in Fig. 3 — both Section arms start with
    // their own attribute list).
    ElementTypeBuilder arm_builder;
    if (arm.kind == ContentNode::Kind::kSeq &&
        arm.occurrence == Occurrence::kOne) {
      SGMLQDB_ASSIGN_OR_RETURN(std::vector<FieldSpec> fields,
                               arm_builder.FieldsForItems(arm.children));
      // Arm constraints are recorded by the caller via arm_fields().
      last_arm_fields_ = fields;
      return TupleOf(fields);
    }
    SGMLQDB_ASSIGN_OR_RETURN(Type t, arm_builder.TypeForGroup(arm));
    last_arm_fields_.clear();
    if (arm.occurrence == Occurrence::kPlus ||
        arm.occurrence == Occurrence::kStar) {
      return Type::List(t);
    }
    return t;
  }

  static Type TupleOf(const std::vector<FieldSpec>& fields) {
    std::vector<std::pair<std::string, Type>> tf;
    tf.reserve(fields.size());
    for (const FieldSpec& f : fields) tf.emplace_back(f.name, f.type);
    return Type::Tuple(std::move(tf));
  }

  const std::vector<FieldSpec>& last_arm_fields() const {
    return last_arm_fields_;
  }

 private:
  size_t next_system_field_ = 1;
  std::vector<FieldSpec> last_arm_fields_;
};

/// Appends the constraints for a list of field specs (optionally
/// scoped to a union alternative).
void AppendFieldConstraints(const std::vector<FieldSpec>& fields,
                            const std::string& alternative,
                            std::vector<Constraint>* out) {
  for (const FieldSpec& f : fields) {
    if (f.not_nil) {
      out->push_back(Constraint{Constraint::Kind::kAttrNotNil, alternative,
                                f.name,
                                {}});
    }
    if (f.non_empty) {
      out->push_back(Constraint{Constraint::Kind::kAttrNonEmptyList,
                                alternative, f.name,
                                {}});
    }
  }
}

/// Translates ATTLIST attributes into (field, constraint) pairs.
Result<std::vector<FieldSpec>> FieldsForAttributes(
    const ElementDef& def, std::vector<Constraint>* constraints,
    std::vector<std::string>* private_attrs) {
  std::vector<FieldSpec> fields;
  for (const AttributeDef& a : def.attributes) {
    FieldSpec f;
    f.name = a.name;
    switch (a.type) {
      case AttributeDef::DeclaredType::kId:
      case AttributeDef::DeclaredType::kIdrefs:
        // ID: the set of objects referencing this one (paper models
        // cross references with object identity; Fig. 3 Figure.label).
        f.type = Type::List(Type::Any());
        break;
      case AttributeDef::DeclaredType::kIdref:
        f.type = Type::Any();
        break;
      default:
        f.type = Type::String();
        break;
    }
    if (a.default_kind == AttributeDef::DefaultKind::kRequired) {
      constraints->push_back(
          Constraint{Constraint::Kind::kAttrNotNil, "", f.name, {}});
    }
    if (a.type == AttributeDef::DeclaredType::kEnumerated) {
      Constraint c{Constraint::Kind::kAttrInSet, "", f.name, {}};
      for (const std::string& v : a.enumerated_values) {
        c.allowed_values.push_back(om::Value::String(v));
      }
      constraints->push_back(std::move(c));
    }
    private_attrs->push_back(f.name);
    fields.push_back(std::move(f));
  }
  return fields;
}

}  // namespace

Result<om::Schema> CompileDtdToSchema(const Dtd& dtd) {
  Schema schema;
  // Base classes supplied by the mapping.
  Type text_type = Type::Tuple({{std::string(kContentAttr), Type::String()}});
  Type bitmap_type = Type::Tuple({{std::string(kFileAttr), Type::String()}});
  SGMLQDB_RETURN_IF_ERROR(schema.AddClass(
      {std::string(kTextClass), text_type, {}, {}, {}}));
  SGMLQDB_RETURN_IF_ERROR(schema.AddClass(
      {std::string(kBitmapClass), bitmap_type, {}, {}, {}}));

  for (const ElementDef& def : dtd.elements()) {
    om::ClassDef cls;
    cls.name = ClassNameFor(def.name);
    std::vector<Constraint> constraints;
    std::vector<std::string> private_attrs;
    SGMLQDB_ASSIGN_OR_RETURN(
        std::vector<FieldSpec> attr_fields,
        FieldsForAttributes(def, &constraints, &private_attrs));

    ElementShape shape = ShapeOf(def);
    switch (shape) {
      case ElementShape::kText:
      case ElementShape::kBitmap: {
        // The inherited structural attribute comes first so the value
        // layout matches the effective (inheritance-merged) type; an
        // ATTLIST attribute with the same name shadows it.
        std::string_view structural = shape == ElementShape::kText
                                          ? kContentAttr
                                          : kFileAttr;
        cls.parents = {shape == ElementShape::kText
                           ? std::string(kTextClass)
                           : std::string(kBitmapClass)};
        std::vector<FieldSpec> fields;
        fields.push_back(
            FieldSpec{std::string(structural), Type::String(), false, false});
        for (FieldSpec& f : attr_fields) {
          if (f.name == structural) continue;
          fields.push_back(std::move(f));
        }
        cls.type = ElementTypeBuilder::TupleOf(fields);
        break;
      }
      case ElementShape::kMixed: {
        // [items: [(pcdata: string + elem: Class + ...)]] + attrs.
        std::vector<std::pair<std::string, Type>> alts;
        alts.emplace_back(std::string(kPcdataMarker), Type::String());
        std::vector<ContentNode> stack = {def.content};
        std::vector<std::string> seen;
        while (!stack.empty()) {
          ContentNode n = stack.back();
          stack.pop_back();
          if (n.kind == ContentNode::Kind::kElement) {
            std::string marker = FieldNameFor(n.element_name);
            bool dup = false;
            for (const std::string& s : seen) {
              if (s == marker) dup = true;
            }
            if (!dup) {
              seen.push_back(marker);
              alts.emplace_back(marker,
                                Type::Class(ClassNameFor(n.element_name)));
            }
          }
          for (const ContentNode& c : n.children) stack.push_back(c);
        }
        std::vector<FieldSpec> fields;
        fields.push_back(FieldSpec{"items",
                                   Type::List(Type::Union(std::move(alts))),
                                   false, false});
        fields.insert(fields.end(), attr_fields.begin(), attr_fields.end());
        cls.type = ElementTypeBuilder::TupleOf(fields);
        break;
      }
      case ElementShape::kStruct: {
        ElementTypeBuilder builder;
        const ContentNode& model = def.content;
        bool repeated = model.occurrence == Occurrence::kPlus ||
                        model.occurrence == Occurrence::kStar;
        if (model.kind == ContentNode::Kind::kSeq && !repeated) {
          SGMLQDB_ASSIGN_OR_RETURN(std::vector<FieldSpec> fields,
                                   builder.FieldsForItems(model.children));
          AppendFieldConstraints(fields, "", &constraints);
          fields.insert(fields.end(), attr_fields.begin(), attr_fields.end());
          cls.type = ElementTypeBuilder::TupleOf(fields);
        } else if ((model.kind == ContentNode::Kind::kChoice ||
                    model.kind == ContentNode::Kind::kAll) &&
                   !repeated) {
          if (!attr_fields.empty()) {
            return Status::Unsupported(
                "element '" + def.name +
                "' has both a choice/& content model and attributes; "
                "this combination is not mapped");
          }
          SGMLQDB_ASSIGN_OR_RETURN(cls.type,
                                   builder.TypeForGroup(model));
          // Alternative-scoped constraints (class Section in Fig. 3):
          // recompute each arm to collect its field constraints.
          if (cls.type.is_union()) {
            ContentNode choice = model;
            if (model.kind == ContentNode::Kind::kAll) {
              SGMLQDB_ASSIGN_OR_RETURN(choice,
                                       sgml::ExpandAllGroups(model));
            }
            size_t k = 1;
            for (const ContentNode& arm : choice.children) {
              if (arm.kind == ContentNode::Kind::kSeq) {
                ElementTypeBuilder arm_builder;
                SGMLQDB_ASSIGN_OR_RETURN(
                    std::vector<FieldSpec> arm_fields,
                    arm_builder.FieldsForItems(arm.children));
                AppendFieldConstraints(arm_fields, SystemMarker(k),
                                       &constraints);
              }
              ++k;
            }
          }
        } else {
          // Repeated whole model, or a bare element/other form: wrap.
          ContentNode group = model;
          group.occurrence = Occurrence::kOne;
          SGMLQDB_ASSIGN_OR_RETURN(Type inner, builder.TypeForGroup(group));
          std::vector<FieldSpec> fields;
          if (repeated) {
            // Field naming mirrors FieldForItem: plural element name
            // for a repeated element, "items" for repeated groups.
            std::string field = model.kind == ContentNode::Kind::kElement
                                    ? PluralFieldNameFor(model.element_name)
                                    : "items";
            FieldSpec f{std::move(field), Type::List(inner), false,
                        model.occurrence == Occurrence::kPlus};
            AppendFieldConstraints({f}, "", &constraints);
            fields.push_back(std::move(f));
          } else {
            fields.push_back(FieldSpec{"item", inner, true, false});
          }
          fields.insert(fields.end(), attr_fields.begin(), attr_fields.end());
          cls.type = ElementTypeBuilder::TupleOf(fields);
        }
        break;
      }
    }
    cls.constraints = std::move(constraints);
    cls.private_attributes = std::move(private_attrs);
    SGMLQDB_RETURN_IF_ERROR(schema.AddClass(std::move(cls)));
  }

  if (!dtd.doctype().empty()) {
    SGMLQDB_RETURN_IF_ERROR(schema.AddName(
        RootNameFor(dtd.doctype()),
        Type::List(Type::Class(ClassNameFor(dtd.doctype())))));
  }
  SGMLQDB_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace sgmlqdb::mapping
