#include "mapping/names.h"

#include <cctype>

namespace sgmlqdb::mapping {

std::string ClassNameFor(std::string_view element) {
  std::string out(element);
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

std::string FieldNameFor(std::string_view element) {
  return std::string(element);
}

std::string PluralFieldNameFor(std::string_view element) {
  std::string out(element);
  auto is_vowel = [](char c) {
    return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
  };
  if (out.size() >= 2 && out.back() == 'y' && !is_vowel(out[out.size() - 2])) {
    out.pop_back();
    out += "ies";
  } else if (!out.empty() && (out.back() == 's' || out.back() == 'x')) {
    out += "es";
  } else {
    out += "s";
  }
  return out;
}

std::string SystemMarker(size_t k) { return "a" + std::to_string(k); }

std::string RootNameFor(std::string_view doctype) {
  return ClassNameFor(PluralFieldNameFor(doctype));
}

}  // namespace sgmlqdb::mapping
