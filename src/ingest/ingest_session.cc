#include "ingest/ingest_session.h"

#include <utility>
#include <vector>

#include "base/fault_injection.h"
#include "mapping/loader.h"
#include "mapping/names.h"
#include "om/typecheck.h"

namespace sgmlqdb::ingest {

using om::ObjectId;
using om::Value;

namespace {

/// Bumps the session's journal depth for one compound verb.
class JournalScope {
 public:
  explicit JournalScope(int* depth) : depth_(depth) { ++*depth_; }
  ~JournalScope() { --*depth_; }
  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

 private:
  int* depth_;
};

}  // namespace

IngestSession::IngestSession(const sgml::Dtd& dtd,
                             std::shared_ptr<const StoreSnapshot> base,
                             std::function<void()> release)
    : dtd_(dtd), base_epoch_(base->epoch), release_(std::move(release)) {
  // Clone the published version into the private workspace. The
  // database clone shares every Value rep; the index clone shares
  // every untouched postings list; the two maps are copied outright
  // (node-per-unit, no text re-tokenization).
  work_ = std::make_shared<StoreSnapshot>();
  work_->db = std::shared_ptr<om::Database>(base->db->Clone());
  work_->element_texts =
      std::make_shared<std::map<uint64_t, std::string>>(*base->element_texts);
  work_->unit_docs =
      std::make_shared<std::map<uint64_t, uint64_t>>(*base->unit_docs);
  work_->index = std::make_shared<text::InvertedIndex>(*base->index);
  work_->rank_stats = std::make_shared<rank::CorpusStats>(*base->rank_stats);
  work_->cache = base->cache;  // shared, epoch-keyed
  work_->doc_count = base->doc_count;
}

IngestSession::~IngestSession() {
  if (release_ != nullptr) {
    release_();
    release_ = nullptr;
  }
}

std::shared_ptr<StoreSnapshot> IngestSession::Consume() {
  std::shared_ptr<StoreSnapshot> out = std::move(work_);
  work_ = nullptr;
  if (release_ != nullptr) {
    release_();
    release_ = nullptr;
  }
  return out;
}

Status IngestSession::DeclareName(std::string_view name) {
  if (work_ == nullptr) {
    return Status::InvalidArgument("ingest session already published");
  }
  if (name.empty()) return Status::OK();
  om::Database* db = work_->db.get();
  if (db->schema().FindName(name) != nullptr) return Status::OK();
  SGMLQDB_RETURN_IF_ERROR(db->DeclareName(
      std::string(name),
      om::Type::Class(mapping::ClassNameFor(dtd_.doctype()))));
  if (journal_depth_ == 0) {
    journal_.push_back({wal::LoggedOp::Kind::kDeclare, std::string(name),
                        std::string(), 0});
  }
  return Status::OK();
}

Result<ObjectId> IngestSession::LoadDocument(std::string_view sgml_text,
                                             std::string_view name,
                                             uint64_t oid_base) {
  if (work_ == nullptr) {
    return Status::InvalidArgument("ingest session already published");
  }
  // Fault site: an apply failure must leave the published store
  // untouched (the workspace is private, so nothing to undo).
  SGMLQDB_FAULT_POINT("ingest.apply");
  om::Database* db = work_->db.get();
  if (oid_base != 0) {
    SGMLQDB_RETURN_IF_ERROR(db->SetNextOid(oid_base));
  }
  if (!name.empty() && db->schema().FindName(name) == nullptr) {
    SGMLQDB_RETURN_IF_ERROR(db->DeclareName(
        std::string(name),
        om::Type::Class(mapping::ClassNameFor(dtd_.doctype()))));
  }
  SGMLQDB_ASSIGN_OR_RETURN(mapping::LoadedDocument loaded,
                           mapping::LoadDocumentText(dtd_, sgml_text, db));
  SGMLQDB_RETURN_IF_ERROR(om::CheckConstraints(*db, loaded.root));
  std::vector<std::pair<uint64_t, std::string_view>> rank_units;
  rank_units.reserve(loaded.element_texts.size());
  for (const auto& [oid, text] : loaded.element_texts) {
    (*work_->element_texts)[oid.id()] = text;
    (*work_->unit_docs)[oid.id()] = loaded.root.id();
    work_->index->Add(oid.id(), text);
    rank_units.emplace_back(oid.id(), text);
    ++stats_.units_added;
  }
  work_->rank_stats->AddDocument(loaded.root.id(), rank_units);
  if (!name.empty()) {
    SGMLQDB_RETURN_IF_ERROR(db->BindName(name, Value::Object(loaded.root)));
  }
  ++work_->doc_count;
  ++stats_.docs_loaded;
  if (journal_depth_ == 0) {
    journal_.push_back({wal::LoggedOp::Kind::kLoad, std::string(name),
                        std::string(sgml_text), oid_base});
  }
  return loaded.root;
}

Status IngestSession::RemoveDocumentRoot(ObjectId root) {
  if (work_ == nullptr) {
    return Status::InvalidArgument("ingest session already published");
  }
  SGMLQDB_FAULT_POINT("ingest.apply");
  om::Database* db = work_->db.get();
  // Every element object of the document is a unit mapped to the
  // root's oid (including the root itself).
  std::vector<uint64_t> units;
  for (const auto& [unit, doc] : *work_->unit_docs) {
    if (doc == root.id()) units.push_back(unit);
  }
  if (units.empty()) {
    return Status::NotFound("oid " + std::to_string(root.id()) +
                            " is not a loaded document root");
  }
  // Un-account the document before its texts are erased (the stats
  // re-tokenize exactly the removed texts — delta-proportional).
  std::vector<std::pair<uint64_t, std::string_view>> rank_units;
  rank_units.reserve(units.size());
  for (uint64_t unit : units) {
    auto text_it = work_->element_texts->find(unit);
    if (text_it != work_->element_texts->end()) {
      rank_units.emplace_back(unit, text_it->second);
    }
  }
  work_->rank_stats->RemoveDocument(root.id(), rank_units);
  for (uint64_t unit : units) {
    auto text_it = work_->element_texts->find(unit);
    if (text_it != work_->element_texts->end()) {
      work_->index->Remove(unit, text_it->second);
      work_->element_texts->erase(text_it);
    }
    work_->unit_docs->erase(unit);
    SGMLQDB_RETURN_IF_ERROR(db->RemoveObject(ObjectId(unit)));
    ++stats_.units_removed;
  }
  // Drop the root from the doctype's persistence list (`Articles`).
  const std::string root_name = mapping::RootNameFor(dtd_.doctype());
  Result<Value> list = db->LookupName(root_name);
  if (list.ok() && list.value().kind() == om::ValueKind::kList) {
    std::vector<Value> kept;
    for (size_t i = 0; i < list.value().size(); ++i) {
      Value v = list.value().Element(i);
      if (v.kind() == om::ValueKind::kObject && v.AsObject() == root) continue;
      kept.push_back(std::move(v));
    }
    SGMLQDB_RETURN_IF_ERROR(
        db->BindName(root_name, Value::List(std::move(kept))));
  }
  // Unbind any per-document persistence name pointing at the root.
  for (const std::string& bound : db->BoundNames()) {
    if (bound == root_name) continue;
    Result<Value> v = db->LookupName(bound);
    if (v.ok() && v.value().kind() == om::ValueKind::kObject &&
        v.value().AsObject() == root) {
      SGMLQDB_RETURN_IF_ERROR(db->UnbindName(bound));
    }
  }
  --work_->doc_count;
  ++stats_.docs_removed;
  if (journal_depth_ == 0) {
    journal_.push_back({wal::LoggedOp::Kind::kRemoveRoot, std::string(),
                        std::string(), root.id()});
  }
  return Status::OK();
}

Status IngestSession::RemoveDocument(std::string_view name) {
  if (work_ == nullptr) {
    return Status::InvalidArgument("ingest session already published");
  }
  Result<Value> bound = work_->db->LookupName(name);
  if (!bound.ok() || bound.value().kind() != om::ValueKind::kObject) {
    return Status::NotFound("'" + std::string(name) +
                            "' does not name a loaded document");
  }
  {
    JournalScope scope(&journal_depth_);
    SGMLQDB_RETURN_IF_ERROR(RemoveDocumentRoot(bound.value().AsObject()));
  }
  if (journal_depth_ == 0) {
    journal_.push_back({wal::LoggedOp::Kind::kRemove, std::string(name),
                        std::string(), 0});
  }
  return Status::OK();
}

Result<ObjectId> IngestSession::ReplaceDocument(std::string_view name,
                                                std::string_view sgml_text,
                                                uint64_t oid_base) {
  Result<ObjectId> root = Status::Internal("unreachable");
  {
    JournalScope scope(&journal_depth_);
    Status removed = RemoveDocument(name);
    if (!removed.ok()) return removed;
    root = LoadDocument(sgml_text, name, oid_base);
  }
  if (root.ok()) {
    // The remove/load pair is one logical replace.
    --stats_.docs_removed;
    --stats_.docs_loaded;
    ++stats_.docs_replaced;
    if (journal_depth_ == 0) {
      journal_.push_back({wal::LoggedOp::Kind::kReplace, std::string(name),
                          std::string(sgml_text), oid_base});
    }
  }
  return root;
}

}  // namespace sgmlqdb::ingest
