#include "ingest/snapshot.h"

#include <chrono>
#include <utility>

namespace sgmlqdb::ingest {

std::shared_ptr<StoreSnapshot> StoreSnapshot::Initial(om::Schema schema) {
  auto snap = std::make_shared<StoreSnapshot>();
  snap->db = std::make_shared<om::Database>(std::move(schema));
  snap->element_texts = std::make_shared<std::map<uint64_t, std::string>>();
  snap->unit_docs = std::make_shared<std::map<uint64_t, uint64_t>>();
  snap->index = std::make_shared<text::InvertedIndex>();
  snap->rank_stats = std::make_shared<rank::CorpusStats>();
  snap->cache = std::make_shared<text::TextQueryCache>();
  return snap;
}

calculus::EvalContext ContextFor(std::shared_ptr<const StoreSnapshot> snap) {
  calculus::EvalContext ctx;
  ctx.db = snap->db.get();
  ctx.element_texts = snap->element_texts.get();
  ctx.text_index = snap->index.get();
  ctx.text_cache = snap->cache.get();
  ctx.unit_docs = snap->unit_docs.get();
  ctx.rank_stats = snap->rank_stats.get();
  ctx.text_epoch = snap->epoch;
  ctx.snapshot_pin = std::move(snap);
  return ctx;
}

std::shared_ptr<const StoreSnapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void SnapshotManager::PruneDeadLocked() {
  size_t keep = 0;
  for (size_t i = 0; i < history_.size(); ++i) {
    if (!history_[i].expired()) history_[keep++] = history_[i];
  }
  history_.resize(keep);
}

uint64_t SnapshotManager::Publish(std::shared_ptr<StoreSnapshot> next) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<text::TextQueryCache> cache = next->cache;
  uint64_t min_live = 0;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++epoch_;
    next->epoch = epoch;
    current_ = std::move(next);
    history_.emplace_back(current_);
    PruneDeadLocked();
    // The oldest epoch still reachable by a reader: pinned statements
    // keep their snapshot's weak entry alive; everything older only
    // has retired cache entries left, which can go.
    min_live = epoch;
    for (const auto& weak : history_) {
      if (auto live = weak.lock()) {
        min_live = live->epoch;
        break;  // history is oldest-first
      }
    }
    ++publishes_;
    last_publish_micros_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  if (cache != nullptr) cache->SetLiveEpochFloor(min_live);
  return epoch;
}

uint64_t SnapshotManager::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++epoch_;
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

SnapshotManager::Stats SnapshotManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.publishes = publishes_;
  s.last_publish_micros = last_publish_micros_;
  s.min_live_epoch = epoch_;
  for (const auto& weak : history_) {
    if (auto live = weak.lock()) {
      ++s.live_snapshots;
      if (s.live_snapshots == 1) s.min_live_epoch = live->epoch;
    }
  }
  s.current_refcount = current_ == nullptr ? 0 : current_.use_count();
  return s;
}

}  // namespace sgmlqdb::ingest
