// Versioned store snapshots: the read side of the live-ingestion
// subsystem.
//
// A StoreSnapshot is one immutable version ("epoch") of everything a
// query touches — the object database, the element-text map, the
// unit->document map, and the inverted index. Readers pin the current
// snapshot with a shared_ptr for the duration of one statement
// (including its parallel union branches) and therefore observe one
// consistent version no matter how many publishes happen mid-flight;
// writers build the next snapshot off to the side (IngestSession) and
// the SnapshotManager swaps it in atomically. Nothing ever blocks:
// the old snapshot stays alive until its last pinned statement
// finishes, then frees itself (epoch-based reclamation via
// shared_ptr refcounts).
//
// The TextQueryCache is deliberately *shared* across snapshots and
// keyed by epoch (see text/query_cache.h); at publish the manager
// raises the cache's epoch floor to the oldest still-pinned epoch so
// retired entries are dropped lazily. The service's compiled-plan
// cache is version-independent and untouched by publishes.

#ifndef SGMLQDB_INGEST_SNAPSHOT_H_
#define SGMLQDB_INGEST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "calculus/eval.h"
#include "om/database.h"
#include "rank/corpus_stats.h"
#include "text/index.h"
#include "text/query_cache.h"

namespace sgmlqdb::ingest {

/// One immutable store version. The shared_ptr members are mutated
/// only before the snapshot is published (single-threaded load, or a
/// single-writer IngestSession building the next version); once a
/// SnapshotManager has published it, everything here is frozen and
/// safe for unsynchronized concurrent reads.
struct StoreSnapshot {
  /// Version number: 0 while loading, assigned by Publish.
  uint64_t epoch = 0;
  std::shared_ptr<om::Database> db;
  /// oid -> element inner text (the text() inverse mapping + index
  /// removal source).
  std::shared_ptr<std::map<uint64_t, std::string>> element_texts;
  /// unit id -> document-root oid it was loaded under.
  std::shared_ptr<std::map<uint64_t, uint64_t>> unit_docs;
  std::shared_ptr<text::InvertedIndex> index;
  /// BM25 corpus statistics (document table, field lengths, df map),
  /// maintained incrementally next to the index and versioned with
  /// the snapshot: a pinned statement scores against its own epoch's
  /// statistics no matter how many publishes race it.
  std::shared_ptr<rank::CorpusStats> rank_stats;
  /// Epoch-keyed text-predicate cache, shared across snapshots.
  std::shared_ptr<text::TextQueryCache> cache;
  /// Documents in this version (roots loaded and not removed).
  size_t doc_count = 0;

  /// An empty version 0 over a fresh schema.
  static std::shared_ptr<StoreSnapshot> Initial(om::Schema schema);
};

/// An evaluation context over `snap`, pinning it: the context (and
/// every copy handed to a union branch) keeps the snapshot alive, so
/// a publish mid-statement can never free the structures under it.
calculus::EvalContext ContextFor(std::shared_ptr<const StoreSnapshot> snap);

class SnapshotManager {
 public:
  struct Stats {
    uint64_t publishes = 0;
    uint64_t last_publish_micros = 0;
    /// Epochs whose snapshot is still referenced somewhere (pinned by
    /// a statement or by the manager as current).
    size_t live_snapshots = 0;
    /// Oldest such epoch (== current epoch when nothing old is
    /// pinned).
    uint64_t min_live_epoch = 0;
    /// shared_ptr refcount of the current snapshot (1 == only the
    /// manager).
    long current_refcount = 0;
  };

  /// The published snapshot, or null before the first Publish. The
  /// returned pointer is the caller's pin: hold it for the duration
  /// of one statement.
  std::shared_ptr<const StoreSnapshot> Current() const;

  /// Publishes `next` as the new current version, assigning it the
  /// next epoch (monotone, starting from `epoch_floor`). Raises the
  /// shared cache's epoch floor to the oldest epoch still pinned by a
  /// reader. Returns the assigned epoch. Thread-safe against
  /// concurrent Current() calls; callers serialize publishes (single
  /// writer).
  uint64_t Publish(std::shared_ptr<StoreSnapshot> next);

  /// Reserves the next epoch without publishing a snapshot — the
  /// pre-freeze load path mutates its workspace in place and only
  /// needs fresh cache keys per mutation.
  uint64_t AdvanceEpoch();

  uint64_t current_epoch() const;
  Stats stats() const;

 private:
  void PruneDeadLocked();

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  uint64_t publishes_ = 0;
  uint64_t last_publish_micros_ = 0;
  std::shared_ptr<const StoreSnapshot> current_;
  /// Published versions, oldest first; expired entries pruned at each
  /// publish (and on stats()).
  std::vector<std::weak_ptr<const StoreSnapshot>> history_;
};

}  // namespace sgmlqdb::ingest

#endif  // SGMLQDB_INGEST_SNAPSHOT_H_
