// IngestSession: the single-writer side of live ingestion.
//
// A session clones the published snapshot into a private workspace
// (copy-on-write where it counts: Values share their immutable reps,
// and the inverted index shares postings per term until a term is
// touched) and applies LoadDocument / ReplaceDocument /
// RemoveDocument to the clone. Readers never see the workspace; the
// paper's whole load pipeline (parse, validate, map, conformance
// check) runs unchanged against the cloned database. Publishing is
// DocumentStore::PublishIngest, which hands the finished workspace to
// the SnapshotManager for the atomic epoch swap.
//
// Index maintenance is incremental: loading a document Add()s its
// units to the cloned index, removing a document Remove()s exactly
// its units (re-tokenizing only the removed texts) — no full rebuild,
// ever. The index's maintenance_stats() prove it.

#ifndef SGMLQDB_INGEST_INGEST_SESSION_H_
#define SGMLQDB_INGEST_INGEST_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "base/status.h"
#include "ingest/snapshot.h"
#include "sgml/dtd.h"
#include "wal/format.h"

namespace sgmlqdb {
class DocumentStore;
}  // namespace sgmlqdb

namespace sgmlqdb::ingest {

class IngestSession {
 public:
  struct Stats {
    size_t docs_loaded = 0;
    size_t docs_replaced = 0;
    size_t docs_removed = 0;
    uint64_t units_added = 0;
    uint64_t units_removed = 0;
  };

  /// Opens a session over `base` (the snapshot the workspace is
  /// cloned from). `release` fires exactly once — at publish or on
  /// destruction — and is how DocumentStore clears its single-writer
  /// latch. Use DocumentStore::BeginIngest rather than constructing
  /// directly.
  IngestSession(const sgml::Dtd& dtd,
                std::shared_ptr<const StoreSnapshot> base,
                std::function<void()> release);
  IngestSession(const IngestSession&) = delete;
  IngestSession& operator=(const IngestSession&) = delete;
  ~IngestSession();

  /// Parses, validates and loads a document into the workspace —
  /// the same pipeline as the pre-freeze DocumentStore::LoadDocument,
  /// against the cloned database. `name` optionally binds the root.
  /// `oid_base` != 0 numbers the document's objects from that oid
  /// (the sharded store's per-document oid blocks; must be past every
  /// assigned oid); 0 = continue numbering.
  Result<om::ObjectId> LoadDocument(std::string_view sgml_text,
                                    std::string_view name = "",
                                    uint64_t oid_base = 0);

  /// Removes the named document and loads `sgml_text` under the same
  /// name. The replacement gets fresh oids (oids are never reused;
  /// `oid_base` as in LoadDocument).
  Result<om::ObjectId> ReplaceDocument(std::string_view name,
                                       std::string_view sgml_text,
                                       uint64_t oid_base = 0);

  /// Declares a per-document persistence name (typed as the doctype's
  /// class) without binding it — how the sharded store makes every
  /// shard's schema know every document name while only the home
  /// shard binds it. Idempotent.
  Status DeclareName(std::string_view name);

  /// Removes the document bound to `name`: all its element objects,
  /// texts, index postings, its entry in the doctype's persistence
  /// root list, and the name binding itself.
  Status RemoveDocument(std::string_view name);

  /// Same, addressing the document by its root object (for unnamed
  /// documents).
  Status RemoveDocumentRoot(om::ObjectId root);

  const Stats& stats() const { return stats_; }
  /// Op journal for the durability layer: every successful mutation,
  /// in apply order. A replace journals as one kReplace (not its
  /// internal remove+load pair), so replaying the journal through a
  /// fresh session reproduces the workspace exactly.
  const std::vector<wal::LoggedOp>& journal() const { return journal_; }
  uint64_t base_epoch() const { return base_epoch_; }
  /// Documents the workspace currently holds.
  size_t doc_count() const { return work_ == nullptr ? 0 : work_->doc_count; }
  /// True once the workspace was handed over for publishing.
  bool consumed() const { return work_ == nullptr; }

 private:
  friend class sgmlqdb::DocumentStore;

  /// Hands the workspace over for publishing (the session becomes
  /// inert) and fires the release hook.
  std::shared_ptr<StoreSnapshot> Consume();

  const sgml::Dtd& dtd_;
  uint64_t base_epoch_ = 0;
  std::shared_ptr<StoreSnapshot> work_;  // null once consumed
  std::function<void()> release_;
  Stats stats_;
  std::vector<wal::LoggedOp> journal_;
  /// > 0 while inside a compound verb (replace = remove + load): the
  /// nested calls' journal entries are suppressed in favor of the
  /// compound's single entry.
  int journal_depth_ = 0;
};

}  // namespace sgmlqdb::ingest

#endif  // SGMLQDB_INGEST_INGEST_SESSION_H_
