#include "path/path.h"

#include <algorithm>
#include <set>

namespace sgmlqdb::path {

using om::Database;
using om::ObjectId;
using om::Value;
using om::ValueKind;

PathStep PathStep::Attr(std::string name) {
  PathStep s(Kind::kAttr);
  s.attr_ = std::move(name);
  return s;
}

PathStep PathStep::Index(int64_t i) {
  PathStep s(Kind::kIndex);
  s.index_ = i;
  return s;
}

PathStep PathStep::Deref() { return PathStep(Kind::kDeref); }

PathStep PathStep::SetElem(Value v) {
  PathStep s(Kind::kSetElem);
  s.elem_ = std::move(v);
  return s;
}

bool operator==(const PathStep& a, const PathStep& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case PathStep::Kind::kAttr:
      return a.attr_ == b.attr_;
    case PathStep::Kind::kIndex:
      return a.index_ == b.index_;
    case PathStep::Kind::kDeref:
      return true;
    case PathStep::Kind::kSetElem:
      return a.elem_ == b.elem_;
  }
  return false;
}

std::string PathStep::ToString() const {
  switch (kind_) {
    case Kind::kAttr:
      return "." + attr_;
    case Kind::kIndex:
      return "[" + std::to_string(index_) + "]";
    case Kind::kDeref:
      return "->";
    case Kind::kSetElem:
      return "{" + elem_.ToString() + "}";
  }
  return "?";
}

Path Path::Append(PathStep step) const {
  std::vector<PathStep> steps = steps_;
  steps.push_back(std::move(step));
  return Path(std::move(steps));
}

Path Path::Concat(const Path& other) const {
  std::vector<PathStep> steps = steps_;
  steps.insert(steps.end(), other.steps_.begin(), other.steps_.end());
  return Path(std::move(steps));
}

Path Path::Slice(size_t from, size_t to) const {
  if (from >= steps_.size()) return Path();
  to = std::min(to, steps_.size() - 1);
  if (to < from) return Path();
  return Path(std::vector<PathStep>(steps_.begin() + from,
                                    steps_.begin() + to + 1));
}

bool Path::EndsWith(const Path& suffix) const {
  if (suffix.length() > length()) return false;
  return std::equal(suffix.steps_.begin(), suffix.steps_.end(),
                    steps_.end() - suffix.length());
}

bool Path::StartsWith(const Path& prefix) const {
  if (prefix.length() > length()) return false;
  return std::equal(prefix.steps_.begin(), prefix.steps_.end(),
                    steps_.begin());
}

bool operator<(const Path& a, const Path& b) {
  return Value::Compare(a.ToValue(), b.ToValue()) < 0;
}

om::Value Path::ToValue() const {
  std::vector<Value> elems;
  elems.reserve(steps_.size());
  for (const PathStep& s : steps_) {
    switch (s.kind()) {
      case PathStep::Kind::kAttr:
        elems.push_back(Value::Tuple({{"attr", Value::String(s.attr())}}));
        break;
      case PathStep::Kind::kIndex:
        elems.push_back(Value::Tuple({{"index", Value::Integer(s.index())}}));
        break;
      case PathStep::Kind::kDeref:
        elems.push_back(Value::Tuple({{"deref", Value::Nil()}}));
        break;
      case PathStep::Kind::kSetElem:
        elems.push_back(Value::Tuple({{"elem", s.elem()}}));
        break;
    }
  }
  return Value::List(std::move(elems));
}

Result<Path> Path::FromValue(const om::Value& v) {
  if (v.kind() != ValueKind::kList) {
    return Status::InvalidArgument("path value must be a list, got " +
                                   v.ToString());
  }
  std::vector<PathStep> steps;
  for (size_t i = 0; i < v.size(); ++i) {
    Value e = v.Element(i);
    if (e.kind() != ValueKind::kTuple || e.size() != 1) {
      return Status::InvalidArgument("malformed path step " + e.ToString());
    }
    const std::string& tag = e.FieldName(0);
    Value payload = e.FieldValue(0);
    if (tag == "attr" && payload.kind() == ValueKind::kString) {
      steps.push_back(PathStep::Attr(payload.AsString()));
    } else if (tag == "index" && payload.kind() == ValueKind::kInteger) {
      steps.push_back(PathStep::Index(payload.AsInteger()));
    } else if (tag == "deref") {
      steps.push_back(PathStep::Deref());
    } else if (tag == "elem") {
      steps.push_back(PathStep::SetElem(std::move(payload)));
    } else {
      return Status::InvalidArgument("malformed path step " + e.ToString());
    }
  }
  return Path(std::move(steps));
}

std::string Path::ToString() const {
  if (steps_.empty()) return "<empty>";
  std::string out;
  for (const PathStep& s : steps_) out += s.ToString();
  return out;
}

Result<om::Value> ApplyPath(const Database& db, const Value& start,
                            const Path& p) {
  Value cur = start;
  for (const PathStep& s : p.steps()) {
    switch (s.kind()) {
      case PathStep::Kind::kAttr: {
        if (cur.kind() != ValueKind::kTuple) {
          return Status::TypeError("cannot select ." + s.attr() +
                                   " on non-tuple " + cur.ToString());
        }
        std::optional<Value> f = cur.FindField(s.attr());
        if (!f.has_value()) {
          return Status::NotFound("no attribute '" + s.attr() + "' in " +
                                  cur.ToString());
        }
        cur = *f;
        break;
      }
      case PathStep::Kind::kIndex: {
        if (cur.kind() != ValueKind::kList) {
          return Status::TypeError("cannot index non-list " + cur.ToString());
        }
        if (s.index() < 0 || static_cast<size_t>(s.index()) >= cur.size()) {
          return Status::NotFound("index " + std::to_string(s.index()) +
                                  " out of range for list of size " +
                                  std::to_string(cur.size()));
        }
        cur = cur.Element(static_cast<size_t>(s.index()));
        break;
      }
      case PathStep::Kind::kDeref: {
        if (cur.kind() != ValueKind::kObject) {
          return Status::TypeError("cannot dereference non-object " +
                                   cur.ToString());
        }
        SGMLQDB_ASSIGN_OR_RETURN(cur, db.Deref(cur.AsObject()));
        break;
      }
      case PathStep::Kind::kSetElem: {
        if (cur.kind() != ValueKind::kSet) {
          return Status::TypeError("cannot choose set element of " +
                                   cur.ToString());
        }
        bool found = false;
        for (size_t i = 0; i < cur.size(); ++i) {
          if (cur.Element(i) == s.elem()) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::NotFound("value " + s.elem().ToString() +
                                  " is not in set " + cur.ToString());
        }
        cur = s.elem();
        break;
      }
    }
  }
  return cur;
}

namespace {

struct EnumState {
  const Database* db;
  const EnumerateOptions* options;
  const PathVisitor* visit;
  size_t visited = 0;
  bool stopped = false;
  std::vector<PathStep> current;              // the path being built
  std::set<std::string> derefed_classes;      // restricted semantics
  std::set<uint64_t> derefed_oids;            // liberal semantics

  bool Emit(const Value& v) {
    ++visited;
    if (!(*visit)(Path(current), v)) {
      stopped = true;
      return false;
    }
    if (options->max_paths != 0 && visited >= options->max_paths) {
      stopped = true;
      return false;
    }
    return true;
  }

  void Walk(const Value& v) {
    if (stopped) return;
    if (!Emit(v)) return;
    if (options->max_length != 0 && current.size() >= options->max_length) {
      return;
    }
    switch (v.kind()) {
      case ValueKind::kTuple:
        for (size_t i = 0; i < v.size() && !stopped; ++i) {
          current.push_back(PathStep::Attr(v.FieldName(i)));
          Walk(v.FieldValue(i));
          current.pop_back();
        }
        break;
      case ValueKind::kList:
        for (size_t i = 0; i < v.size() && !stopped; ++i) {
          current.push_back(PathStep::Index(static_cast<int64_t>(i)));
          Walk(v.Element(i));
          current.pop_back();
        }
        break;
      case ValueKind::kSet:
        for (size_t i = 0; i < v.size() && !stopped; ++i) {
          current.push_back(PathStep::SetElem(v.Element(i)));
          Walk(v.Element(i));
          current.pop_back();
        }
        break;
      case ValueKind::kObject: {
        ObjectId oid = v.AsObject();
        const std::string* cls = db->ClassOf(oid);
        if (cls == nullptr) break;  // dangling oid: no deref edge
        if (options->semantics == PathSemantics::kRestricted) {
          if (derefed_classes.count(*cls) > 0) break;
          Result<Value> target = db->Deref(oid);
          if (!target.ok()) break;
          derefed_classes.insert(*cls);
          current.push_back(PathStep::Deref());
          Walk(target.value());
          current.pop_back();
          derefed_classes.erase(*cls);
        } else {
          if (derefed_oids.count(oid.id()) > 0) break;
          Result<Value> target = db->Deref(oid);
          if (!target.ok()) break;
          derefed_oids.insert(oid.id());
          current.push_back(PathStep::Deref());
          Walk(target.value());
          current.pop_back();
          derefed_oids.erase(oid.id());
        }
        break;
      }
      default:
        break;  // atomic: leaf
    }
  }
};

}  // namespace

size_t EnumeratePaths(const Database& db, const Value& start,
                      const EnumerateOptions& options,
                      const PathVisitor& visit) {
  EnumState state;
  state.db = &db;
  state.options = &options;
  state.visit = &visit;
  state.Walk(start);
  return state.visited;
}

std::vector<Path> AllPaths(const Database& db, const Value& start,
                           const EnumerateOptions& options) {
  std::vector<Path> out;
  EnumeratePaths(db, start, options, [&](const Path& p, const Value&) {
    out.push_back(p);
    return true;
  });
  return out;
}

std::vector<std::pair<Path, om::Value>> AllPathsWithValues(
    const Database& db, const Value& start, const EnumerateOptions& options) {
  std::vector<std::pair<Path, Value>> out;
  EnumeratePaths(db, start, options, [&](const Path& p, const Value& v) {
    out.emplace_back(p, v);
    return true;
  });
  return out;
}

}  // namespace sgmlqdb::path
