#include "path/schema_paths.h"

#include <set>

namespace sgmlqdb::path {

using om::Schema;
using om::Type;
using om::TypeKind;

bool SchemaStep::Matches(const PathStep& step) const {
  switch (kind_) {
    case Kind::kAttr:
      return step.kind() == PathStep::Kind::kAttr && step.attr() == attr_;
    case Kind::kIndexAny:
      return step.kind() == PathStep::Kind::kIndex;
    case Kind::kSetAny:
      return step.kind() == PathStep::Kind::kSetElem;
    case Kind::kDeref:
      return step.kind() == PathStep::Kind::kDeref;
  }
  return false;
}

std::string SchemaStep::ToString() const {
  switch (kind_) {
    case Kind::kAttr:
      return "." + attr_;
    case Kind::kIndexAny:
      return "[*]";
    case Kind::kSetAny:
      return "{*}";
    case Kind::kDeref:
      return "->" /* + "(" + attr_ + ")" kept terse */;
  }
  return "?";
}

bool SchemaPath::Matches(const Path& path) const {
  if (path.length() != steps.size()) return false;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (!steps[i].Matches(path.step(i))) return false;
  }
  return true;
}

std::string SchemaPath::ToString() const {
  std::string out;
  if (steps.empty()) out = "<empty>";
  for (const SchemaStep& s : steps) out += s.ToString();
  out += " : " + result_type.ToString();
  return out;
}

namespace {

struct SchemaEnumState {
  const Schema* schema;
  const SchemaPathOptions* options;
  std::vector<SchemaPath> out;
  std::vector<SchemaStep> current;
  std::set<std::string> derefed_classes;

  void Emit(const Type& t) {
    if (options->ending_attribute.has_value()) {
      if (current.empty()) return;
      const SchemaStep& last = current.back();
      if (last.kind() != SchemaStep::Kind::kAttr ||
          last.name() != *options->ending_attribute) {
        return;
      }
    }
    out.push_back(SchemaPath{current, t});
  }

  void Walk(const Type& t) {
    Emit(t);
    if (options->max_length != 0 && current.size() >= options->max_length) {
      return;
    }
    switch (t.kind()) {
      case TypeKind::kTuple:
      case TypeKind::kUnion:
        // Union alternatives are selected exactly like tuple
        // attributes (markers), matching the value encoding.
        for (size_t i = 0; i < t.size(); ++i) {
          current.push_back(SchemaStep::Attr(t.FieldName(i)));
          Walk(t.FieldType(i));
          current.pop_back();
        }
        break;
      case TypeKind::kList:
        current.push_back(SchemaStep::IndexAny());
        Walk(t.element_type());
        current.pop_back();
        break;
      case TypeKind::kSet:
        current.push_back(SchemaStep::SetAny());
        Walk(t.element_type());
        current.pop_back();
        break;
      case TypeKind::kClass: {
        const std::string& cls = t.class_name();
        if (derefed_classes.count(cls) > 0) break;
        // A value of a class type may be an object of the class *or of
        // any subclass*; dereference through each possibility (the
        // subclass may have a wider effective type).
        for (const std::string& sub : schema->SubclassesOf(cls)) {
          if (derefed_classes.count(sub) > 0) continue;
          Result<Type> effective = schema->EffectiveType(sub);
          if (!effective.ok()) continue;
          // A subclass with the identical effective type adds nothing.
          if (sub != cls &&
              Type::Equals(effective.value(),
                           schema->EffectiveType(cls).ok()
                               ? schema->EffectiveType(cls).value()
                               : Type::Any())) {
            continue;
          }
          derefed_classes.insert(cls);
          derefed_classes.insert(sub);
          current.push_back(SchemaStep::Deref(sub));
          Walk(effective.value());
          current.pop_back();
          derefed_classes.erase(sub);
          if (sub != cls) derefed_classes.erase(cls);
        }
        break;
      }
      default:
        break;  // atomic / any: leaf
    }
  }
};

}  // namespace

std::vector<SchemaPath> EnumerateSchemaPaths(const Schema& schema,
                                             const Type& start,
                                             const SchemaPathOptions& options) {
  SchemaEnumState state;
  state.schema = &schema;
  state.options = &options;
  state.Walk(start);
  return state.out;
}

Result<om::Type> TypeOfAttributeTargets(const Schema& schema,
                                        const Type& start,
                                        const std::string& attr) {
  SchemaPathOptions options;
  options.ending_attribute = attr;
  std::vector<SchemaPath> paths = EnumerateSchemaPaths(schema, start, options);
  if (paths.empty()) {
    return Status::TypeError("no path ending with attribute '" + attr +
                             "' exists in type " + start.ToString());
  }
  // Deduplicate result types.
  std::vector<Type> types;
  for (const SchemaPath& p : paths) {
    bool seen = false;
    for (const Type& t : types) {
      if (Type::Equals(t, p.result_type)) {
        seen = true;
        break;
      }
    }
    if (!seen) types.push_back(p.result_type);
  }
  if (types.size() == 1) return types[0];
  // System-supplied markers alpha1, alpha2, ... (paper §5.3).
  std::vector<std::pair<std::string, Type>> alts;
  for (size_t i = 0; i < types.size(); ++i) {
    alts.emplace_back("alpha" + std::to_string(i + 1), types[i]);
  }
  return Type::Union(std::move(alts));
}

}  // namespace sgmlqdb::path
