// Schema-level path enumeration (paper §5.4).
//
// Under the restricted path semantics (no two dereferences through the
// same class), the set of *abstract* paths derivable from a type is
// finite and computable from the schema alone. This is the basis of
// the algebraization: path/attribute variables in a query are replaced
// by the (finitely many) schema paths that match, turning the query
// into a union of path-free queries.
//
// A schema path abstracts concrete paths: list indices become [*],
// set choices become {*}; attribute and dereference steps are exact.

#ifndef SGMLQDB_PATH_SCHEMA_PATHS_H_
#define SGMLQDB_PATH_SCHEMA_PATHS_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "om/schema.h"
#include "om/type.h"
#include "path/path.h"

namespace sgmlqdb::path {

/// One abstract step.
class SchemaStep {
 public:
  enum class Kind { kAttr, kIndexAny, kSetAny, kDeref };

  static SchemaStep Attr(std::string name) {
    SchemaStep s(Kind::kAttr);
    s.attr_ = std::move(name);
    return s;
  }
  static SchemaStep IndexAny() { return SchemaStep(Kind::kIndexAny); }
  static SchemaStep SetAny() { return SchemaStep(Kind::kSetAny); }
  static SchemaStep Deref(std::string class_name) {
    SchemaStep s(Kind::kDeref);
    s.attr_ = std::move(class_name);
    return s;
  }

  Kind kind() const { return kind_; }
  /// Attribute name (kAttr) or class name (kDeref).
  const std::string& name() const { return attr_; }

  friend bool operator==(const SchemaStep& a, const SchemaStep& b) {
    return a.kind_ == b.kind_ && a.attr_ == b.attr_;
  }

  /// Whether a concrete step is an instance of this abstract step.
  bool Matches(const PathStep& step) const;

  /// ".title", "[*]", "{*}", "->".
  std::string ToString() const;

 private:
  explicit SchemaStep(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string attr_;
};

/// An abstract path plus the type it leads to.
struct SchemaPath {
  std::vector<SchemaStep> steps;
  om::Type result_type;

  /// Whether a concrete path instantiates this schema path.
  bool Matches(const Path& path) const;

  std::string ToString() const;
};

struct SchemaPathOptions {
  /// Cap on path length (0 = unlimited; enumeration always terminates
  /// under the restricted semantics).
  size_t max_length = 0;
  /// If set, only paths whose last step is `.attr` with this name are
  /// returned (plus their result types). Intermediate paths are still
  /// explored.
  std::optional<std::string> ending_attribute;
};

/// All schema paths starting at `start` (including the empty path,
/// unless ending_attribute filters it out), under restricted-deref
/// semantics (a class may appear at most once as a kDeref step on any
/// path).
std::vector<SchemaPath> EnumerateSchemaPaths(const om::Schema& schema,
                                             const om::Type& start,
                                             const SchemaPathOptions& options);

/// The union of result types of all schema paths from `start` ending
/// with attribute `attr` — the static type the paper assigns to `X` in
/// formulas like  exists P (<root P . attr (X)>)  (§5.3). Distinct
/// result types are wrapped into a marked union with system-supplied
/// markers alpha1, alpha2, ... when there is more than one.
Result<om::Type> TypeOfAttributeTargets(const om::Schema& schema,
                                        const om::Type& start,
                                        const std::string& attr);

}  // namespace sgmlqdb::path

#endif  // SGMLQDB_PATH_SCHEMA_PATHS_H_
