// Concrete paths (paper §5.2): sequences of
//
//   .a   attribute selection (tuple or marked union),
//   [i]  list indexing,
//   ->   object dereferencing,
//   {v}  set-element choice,
//
// navigating through database objects/values. Paths are first-class
// citizens: they convert to/from om::Value (as a list of step values)
// so that query results can contain paths and list functions (length,
// slicing) apply to them — exactly the paper's §4.3 points 3 & 4.

#ifndef SGMLQDB_PATH_PATH_H_
#define SGMLQDB_PATH_PATH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "om/database.h"
#include "om/value.h"

namespace sgmlqdb::path {

/// One step of a concrete path.
class PathStep {
 public:
  enum class Kind { kAttr, kIndex, kDeref, kSetElem };

  static PathStep Attr(std::string name);
  static PathStep Index(int64_t i);
  static PathStep Deref();
  static PathStep SetElem(om::Value v);

  Kind kind() const { return kind_; }
  const std::string& attr() const { return attr_; }
  int64_t index() const { return index_; }
  const om::Value& elem() const { return elem_; }

  friend bool operator==(const PathStep& a, const PathStep& b);
  friend bool operator!=(const PathStep& a, const PathStep& b) {
    return !(a == b);
  }

  /// ".sections", "[0]", "->", "{v}".
  std::string ToString() const;

 private:
  PathStep(Kind kind) : kind_(kind), index_(0) {}  // NOLINT

  Kind kind_;
  std::string attr_;
  int64_t index_;
  om::Value elem_;
};

/// A concrete path: a (possibly empty) sequence of steps.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<PathStep> steps) : steps_(std::move(steps)) {}

  static Path Empty() { return Path(); }

  size_t length() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const PathStep& step(size_t i) const { return steps_[i]; }
  const std::vector<PathStep>& steps() const { return steps_; }

  /// Returns this path extended by one step / by another path.
  Path Append(PathStep step) const;
  Path Concat(const Path& other) const;

  /// Paper §4.3 point 4: P[i:j] — the subpath of steps i..j inclusive.
  /// Out-of-range indices are clamped.
  Path Slice(size_t from, size_t to) const;

  /// True if this path's step sequence ends with `suffix`'s.
  bool EndsWith(const Path& suffix) const;
  /// True if this path's step sequence starts with `prefix`'s.
  bool StartsWith(const Path& prefix) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.steps_ == b.steps_;
  }
  friend bool operator!=(const Path& a, const Path& b) { return !(a == b); }
  friend bool operator<(const Path& a, const Path& b);

  /// Paths are data: encode as a list value, one tuple per step:
  ///   .a  -> tuple(attr: "a")     [i] -> tuple(index: i)
  ///   ->  -> tuple(deref: nil)    {v} -> tuple(elem: v)
  om::Value ToValue() const;
  /// Inverse of ToValue; fails on malformed encodings.
  static Result<Path> FromValue(const om::Value& v);

  /// ".sections[0].subsectns[0]" (paper §4.3 notation); "<empty>" for
  /// the empty path.
  std::string ToString() const;

 private:
  std::vector<PathStep> steps_;
};

inline std::ostream& operator<<(std::ostream& os, const Path& p) {
  return os << p.ToString();
}

/// Applies a concrete path to a start value: follows each step,
/// failing with NotFound/TypeError if a step does not apply.
Result<om::Value> ApplyPath(const om::Database& db, const om::Value& start,
                            const Path& path);

/// Path interpretation (paper §5.2 "Range-Restriction"):
///  - kRestricted: no two dereferences of objects *of the same class*
///    on one path (the paper's chosen semantics — finitely many paths,
///    schema-derivable);
///  - kLiberal: no object dereferenced twice on one path (paths grow
///    with the data; needs loop detection).
enum class PathSemantics { kRestricted, kLiberal };

struct EnumerateOptions {
  PathSemantics semantics = PathSemantics::kRestricted;
  /// Hard cap on emitted paths (safety valve; 0 = unlimited).
  size_t max_paths = 0;
  /// Hard cap on path length (0 = unlimited).
  size_t max_length = 0;
};

/// Visits every (path, value-at-end-of-path) pair reachable from
/// `start` under the chosen semantics, including the empty path at
/// `start` itself. Enumeration is depth-first in value order; the
/// callback returns false to stop early. Returns the number of pairs
/// visited.
using PathVisitor = std::function<bool(const Path&, const om::Value&)>;
size_t EnumeratePaths(const om::Database& db, const om::Value& start,
                      const EnumerateOptions& options,
                      const PathVisitor& visit);

/// Convenience: all paths from `start` (paper: `my_article PATH_p`),
/// optionally only those whose step sequence ends with `suffix`.
std::vector<Path> AllPaths(const om::Database& db, const om::Value& start,
                           const EnumerateOptions& options);
std::vector<std::pair<Path, om::Value>> AllPathsWithValues(
    const om::Database& db, const om::Value& start,
    const EnumerateOptions& options);

}  // namespace sgmlqdb::path

#endif  // SGMLQDB_PATH_PATH_H_
