#include "corpus/generator.h"

#include <algorithm>
#include <cmath>

namespace sgmlqdb::corpus {

uint64_t Rng::Next() {
  // splitmix64.
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

const std::vector<std::string>& Vocabulary() {
  static const std::vector<std::string>& kWords =
      *new std::vector<std::string>{
          // Frequent filler.
          "the", "of", "a", "and", "to", "in", "is", "for", "with", "that",
          "as", "on", "are", "this", "by", "an", "be", "from", "which",
          "can", "we", "it", "or", "has", "its", "our", "their", "these",
          "such", "more", "one", "two", "also", "may", "not", "but",
          // Domain terms (the paper's running vocabulary).
          "document", "documents", "structured", "SGML", "database",
          "databases", "OODB", "OODBMS", "query", "queries", "language",
          "languages", "object", "objects", "oriented", "model", "models",
          "schema", "schemas", "type", "types", "union", "tuple", "tuples",
          "ordered", "list", "lists", "path", "paths", "variable",
          "variables", "attribute", "attributes", "calculus", "algebra",
          "mapping", "instance", "instances", "element", "elements",
          "grammar", "parser", "text", "retrieval", "index", "indexing",
          "pattern", "matching", "complex", "value", "values", "class",
          "classes", "inheritance", "section", "title", "figure",
          "caption", "hypertext", "navigation", "semantics", "restricted",
          "liberal", "dereferencing", "optimization", "storage",
          "concurrency", "recovery", "version", "versions", "standard",
          "markup", "logical", "structure", "content", "knowledge",
          "incomplete", "heterogeneous", "first", "citizens", "formal",
          "foundation", "evaluation", "safety", "finite", "recursion",
      };
  return kWords;
}

namespace {

/// Word of Zipf-skewed rank `idx` in the vocabulary extended to
/// `total` words: built-in words first, synthetic "w<index>" tail.
void AppendVocabWord(size_t idx, std::string* out) {
  const std::vector<std::string>& vocab = Vocabulary();
  if (idx < vocab.size()) {
    *out += vocab[idx];
  } else {
    *out += 'w';
    *out += std::to_string(idx);
  }
}

size_t ZipfIndex(Rng& rng, size_t total) {
  // Skewed index: cube of a uniform deviate biases towards the head.
  double u = rng.NextDouble();
  size_t idx = static_cast<size_t>(u * u * u * static_cast<double>(total));
  if (idx >= total) idx = total - 1;
  return idx;
}

}  // namespace

std::string RandomSentence(Rng& rng, size_t words, size_t vocabulary_words) {
  const size_t total = std::max(vocabulary_words, Vocabulary().size());
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    AppendVocabWord(ZipfIndex(rng, total), &out);
  }
  out += '.';
  return out;
}

std::string RandomSentence(Rng& rng, size_t words) {
  return RandomSentence(rng, words, 0);
}

namespace {

void AppendBody(Rng& rng, const ArticleParams& p, size_t fig_counter,
                std::string* out) {
  if (rng.Chance(p.figure_prob)) {
    *out += "<body><figure label=\"fig" + std::to_string(fig_counter) +
            "\"><picture><caption>" + RandomSentence(rng, 6, p.vocabulary_words) +
            "</caption></figure></body>\n";
  } else {
    *out += "<body><paragr>" +
            RandomSentence(rng, p.words_per_paragraph, p.vocabulary_words) +
            "</paragr></body>\n";
  }
}

}  // namespace

std::string GenerateArticle(const ArticleParams& p) {
  Rng rng(p.seed);
  std::string out = "<article status=\"";
  out += rng.Chance(0.5) ? "final" : "draft";
  out += "\">\n";
  out += "<title>" + RandomSentence(rng, 7, p.vocabulary_words) + "</title>\n";
  for (size_t i = 0; i < p.authors; ++i) {
    out += "<author>Author " + std::to_string(rng.Below(1000)) + "\n";
  }
  out += "<affil>" + RandomSentence(rng, 3, p.vocabulary_words) + "</affil>\n";
  out += "<abstract>" + RandomSentence(rng, 2 * p.words_per_paragraph, p.vocabulary_words) +
         "</abstract>\n";
  size_t fig_counter = p.seed % 100000;
  for (size_t s = 0; s < p.sections; ++s) {
    out += "<section><title>" + RandomSentence(rng, 5, p.vocabulary_words) + "</title>\n";
    bool with_subsections = rng.Chance(p.subsection_prob);
    size_t bodies = 1 + rng.Below(p.bodies_per_section);
    if (with_subsections) {
      // (title, body*, subsectn+): zero or more bodies first.
      for (size_t b = 0; b + 1 < bodies; ++b) {
        AppendBody(rng, p, ++fig_counter, &out);
      }
      size_t subs = 1 + rng.Below(p.max_subsections);
      for (size_t k = 0; k < subs; ++k) {
        out += "<subsectn><title>" + RandomSentence(rng, 4, p.vocabulary_words) + "</title>\n";
        AppendBody(rng, p, ++fig_counter, &out);
        out += "</subsectn>\n";
      }
    } else {
      for (size_t b = 0; b < bodies; ++b) {
        AppendBody(rng, p, ++fig_counter, &out);
      }
    }
    out += "</section>\n";
  }
  out += "<acknowl>" + RandomSentence(rng, 10, p.vocabulary_words) + "</acknowl>\n";
  out += "</article>\n";
  return out;
}

std::vector<std::string> GenerateCorpus(size_t n, ArticleParams params) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(GenerateCorpusArticle(i, params));
  }
  return out;
}

std::string GenerateCorpusArticle(size_t i, ArticleParams params) {
  params.seed += 0x9e3779b9ull * (i + 1);
  return GenerateArticle(params);
}

}  // namespace sgmlqdb::corpus
