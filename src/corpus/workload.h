// The canonical serving workload: the paper's Q1..Q6 example queries
// in our concrete syntax plus Q7 (ranked retrieval) and Q8 (group-by
// aggregation), each with the engine the serving drivers run it on,
// plus the live-ingest document stream. This is the single
// definition replayed by every front end — the in-process benches
// (bench_queries, bench_service via bench_util.h), the qdb_serve and
// qdb_server drivers, and the network load harness (bench_net) — so
// latency numbers across layers measure the same statements.

#ifndef SGMLQDB_CORPUS_WORKLOAD_H_
#define SGMLQDB_CORPUS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oql/oql.h"

namespace sgmlqdb::corpus {

struct WorkloadQuery {
  const char* name;  // e.g. "Q3_AllTitlesOfOneDocument"
  const char* text;
  /// The engine the serving mix runs this query on (queries outside
  /// the algebraic fragment stay on the naive reference engine).
  oql::Engine engine;
};

/// Q1..Q8, document order. The first corpus document is expected to
/// be bound to "doc0" for the single-document queries.
const std::vector<WorkloadQuery>& PaperQueryMix();

/// Aborts on unknown name (a typo in a bench is a bug, not an error).
const WorkloadQuery& PaperQuery(const char* name);

/// `n` extra articles for live-ingest runs, generated from a seed
/// disjoint from the base corpus so ingested text never collides with
/// loaded documents.
std::vector<std::string> LiveIngestArticles(size_t n, uint64_t seed = 4242);

}  // namespace sgmlqdb::corpus

#endif  // SGMLQDB_CORPUS_WORKLOAD_H_
