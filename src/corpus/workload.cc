#include "corpus/workload.h"

#include <cstdlib>
#include <string_view>

#include "corpus/generator.h"

namespace sgmlqdb::corpus {

const std::vector<WorkloadQuery>& PaperQueryMix() {
  static const std::vector<WorkloadQuery>& mix = *new std::vector<
      WorkloadQuery>{
      {"Q1_TitleAndFirstAuthor",
       "select tuple (t: a.title, f_author: first(a.authors)) "
       "from a in Articles, s in a.sections "
       "where s.title contains (\"SGML\" or \"query\")",
       oql::Engine::kNaive},
      {"Q2_SubsectionsContaining",
       "select text(ss) from a in Articles, s in a.sections, "
       "ss in s.subsectns where ss contains (\"complex\" and \"object\")",
       oql::Engine::kNaive},
      {"Q3_AllTitlesOfOneDocument", "select t from doc0 .. title(t)",
       oql::Engine::kAlgebraic},
      {"Q4_StructuralDiff", "doc0 PATH_p - doc0 PATH_q",
       oql::Engine::kNaive},
      {"Q5_AttributeGrep",
       "select name(ATT_a) from doc0 PATH_p.ATT_a(val) "
       "where val contains (\"final\")",
       oql::Engine::kAlgebraic},
      {"Q6_PositionComparison",
       "select a from a in Articles, "
       "i in positions(a, \"abstract\"), "
       "j in positions(a, \"sections\") where i < j",
       oql::Engine::kNaive},
      // The ranked-retrieval and aggregation surface (ROADMAP item 4):
      // not in the paper's Q1..Q6, but served by the same front ends.
      {"Q7_RankedRetrieval",
       "rank(Articles by (\"sgml\" and \"query\")) limit 10",
       oql::Engine::kAlgebraic},
      {"Q8_CountByStatus",
       "select count(a) from a in Articles, a .. status(v) group by v",
       oql::Engine::kAlgebraic},
  };
  return mix;
}

const WorkloadQuery& PaperQuery(const char* name) {
  for (const WorkloadQuery& q : PaperQueryMix()) {
    if (std::string_view(q.name) == name) return q;
  }
  std::abort();
}

std::vector<std::string> LiveIngestArticles(size_t n, uint64_t seed) {
  ArticleParams params;
  params.seed = seed;
  return GenerateCorpus(n, params);
}

}  // namespace sgmlqdb::corpus
