// Synthetic SGML corpus generator over the paper's article DTD
// (Figure 1). Deterministic (seeded); text is drawn from a skewed
// (Zipf-like) vocabulary that includes the domain terms the paper's
// example queries look for ("SGML", "OODBMS", "complex", "object",
// ...), so query selectivities are stable and controllable.

#ifndef SGMLQDB_CORPUS_GENERATOR_H_
#define SGMLQDB_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgmlqdb::corpus {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next();
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n);
  /// Uniform in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Chance(double p);

 private:
  uint64_t state_;
};

struct ArticleParams {
  uint64_t seed = 42;
  size_t authors = 3;
  size_t sections = 4;
  /// Probability a section uses the (title, body*, subsectn+)
  /// alternative.
  double subsection_prob = 0.3;
  size_t max_subsections = 3;
  size_t bodies_per_section = 3;
  size_t words_per_paragraph = 40;
  /// Probability a body is a figure instead of a paragraph.
  double figure_prob = 0.1;
};

/// One SGML article conforming to the Figure 1 DTD.
std::string GenerateArticle(const ArticleParams& params);

/// `n` articles with seeds derived from params.seed.
std::vector<std::string> GenerateCorpus(size_t n, ArticleParams params);

/// A sentence of `words` vocabulary words (Zipf-skewed).
std::string RandomSentence(Rng& rng, size_t words);

/// The generator vocabulary, most-frequent first.
const std::vector<std::string>& Vocabulary();

}  // namespace sgmlqdb::corpus

#endif  // SGMLQDB_CORPUS_GENERATOR_H_
