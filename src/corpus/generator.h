// Synthetic SGML corpus generator over the paper's article DTD
// (Figure 1). Deterministic (seeded); text is drawn from a skewed
// (Zipf-like) vocabulary that includes the domain terms the paper's
// example queries look for ("SGML", "OODBMS", "complex", "object",
// ...), so query selectivities are stable and controllable.

#ifndef SGMLQDB_CORPUS_GENERATOR_H_
#define SGMLQDB_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgmlqdb::corpus {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next();
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n);
  /// Uniform in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Chance(double p);

 private:
  uint64_t state_;
};

struct ArticleParams {
  uint64_t seed = 42;
  size_t authors = 3;
  size_t sections = 4;
  /// Probability a section uses the (title, body*, subsectn+)
  /// alternative.
  double subsection_prob = 0.3;
  size_t max_subsections = 3;
  size_t bodies_per_section = 3;
  size_t words_per_paragraph = 40;
  /// Probability a body is a figure instead of a paragraph.
  double figure_prob = 0.1;
  /// Extends the vocabulary with synthetic Zipf-tail words ("w0042",
  /// "w0043", ...) up to this total size; 0 keeps just the built-in
  /// ~115 paper words. The built-in vocabulary caps the
  /// frequent-to-rare term frequency ratio at ~70, far below a real
  /// corpus — a large tail reproduces realistic ratios (rare terms
  /// selective at the 1e-4 level), which is what index skip
  /// structures are sized against.
  size_t vocabulary_words = 0;
};

/// One SGML article conforming to the Figure 1 DTD.
std::string GenerateArticle(const ArticleParams& params);

/// `n` articles with seeds derived from params.seed.
std::vector<std::string> GenerateCorpus(size_t n, ArticleParams params);

/// The i-th article GenerateCorpus(n, params) would produce, without
/// materializing the rest — the streaming path for large corpora
/// (10^5 articles and up), where generation stays O(1) memory and the
/// caller ingests article-by-article.
std::string GenerateCorpusArticle(size_t i, ArticleParams params);

/// A sentence of `words` vocabulary words (Zipf-skewed).
std::string RandomSentence(Rng& rng, size_t words);

/// As above over the vocabulary extended to `vocabulary_words` total
/// words (see ArticleParams::vocabulary_words); tail words render as
/// "w<index>".
std::string RandomSentence(Rng& rng, size_t words, size_t vocabulary_words);

/// The generator vocabulary, most-frequent first.
const std::vector<std::string>& Vocabulary();

}  // namespace sgmlqdb::corpus

#endif  // SGMLQDB_CORPUS_GENERATOR_H_
