file(REMOVE_RECURSE
  "CMakeFiles/db_grep.dir/db_grep.cpp.o"
  "CMakeFiles/db_grep.dir/db_grep.cpp.o.d"
  "db_grep"
  "db_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
