# Empty compiler generated dependencies file for db_grep.
# This may be replaced when dependencies are built.
