# Empty compiler generated dependencies file for version_diff.
# This may be replaced when dependencies are built.
