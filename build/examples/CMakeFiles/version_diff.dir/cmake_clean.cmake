file(REMOVE_RECURSE
  "CMakeFiles/version_diff.dir/version_diff.cpp.o"
  "CMakeFiles/version_diff.dir/version_diff.cpp.o.d"
  "version_diff"
  "version_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
