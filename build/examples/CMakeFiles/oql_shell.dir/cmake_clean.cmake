file(REMOVE_RECURSE
  "CMakeFiles/oql_shell.dir/oql_shell.cpp.o"
  "CMakeFiles/oql_shell.dir/oql_shell.cpp.o.d"
  "oql_shell"
  "oql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
