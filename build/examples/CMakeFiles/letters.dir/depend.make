# Empty dependencies file for letters.
# This may be replaced when dependencies are built.
