file(REMOVE_RECURSE
  "CMakeFiles/letters.dir/letters.cpp.o"
  "CMakeFiles/letters.dir/letters.cpp.o.d"
  "letters"
  "letters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
