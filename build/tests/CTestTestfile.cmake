# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/om_test[1]_include.cmake")
include("/root/repo/build/tests/path_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/sgml_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/calculus_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/oql_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
