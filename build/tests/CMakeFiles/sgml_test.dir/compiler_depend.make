# Empty compiler generated dependencies file for sgml_test.
# This may be replaced when dependencies are built.
