file(REMOVE_RECURSE
  "CMakeFiles/sgml_test.dir/sgml/automaton_test.cc.o"
  "CMakeFiles/sgml_test.dir/sgml/automaton_test.cc.o.d"
  "CMakeFiles/sgml_test.dir/sgml/content_model_test.cc.o"
  "CMakeFiles/sgml_test.dir/sgml/content_model_test.cc.o.d"
  "CMakeFiles/sgml_test.dir/sgml/document_test.cc.o"
  "CMakeFiles/sgml_test.dir/sgml/document_test.cc.o.d"
  "CMakeFiles/sgml_test.dir/sgml/dtd_test.cc.o"
  "CMakeFiles/sgml_test.dir/sgml/dtd_test.cc.o.d"
  "sgml_test"
  "sgml_test.pdb"
  "sgml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
