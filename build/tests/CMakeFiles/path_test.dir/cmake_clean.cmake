file(REMOVE_RECURSE
  "CMakeFiles/path_test.dir/path/path_test.cc.o"
  "CMakeFiles/path_test.dir/path/path_test.cc.o.d"
  "CMakeFiles/path_test.dir/path/schema_paths_test.cc.o"
  "CMakeFiles/path_test.dir/path/schema_paths_test.cc.o.d"
  "path_test"
  "path_test.pdb"
  "path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
