
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/om/database_test.cc" "tests/CMakeFiles/om_test.dir/om/database_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/database_test.cc.o.d"
  "/root/repo/tests/om/schema_test.cc" "tests/CMakeFiles/om_test.dir/om/schema_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/schema_test.cc.o.d"
  "/root/repo/tests/om/subtype_test.cc" "tests/CMakeFiles/om_test.dir/om/subtype_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/subtype_test.cc.o.d"
  "/root/repo/tests/om/type_test.cc" "tests/CMakeFiles/om_test.dir/om/type_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/type_test.cc.o.d"
  "/root/repo/tests/om/typecheck_test.cc" "tests/CMakeFiles/om_test.dir/om/typecheck_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/typecheck_test.cc.o.d"
  "/root/repo/tests/om/value_test.cc" "tests/CMakeFiles/om_test.dir/om/value_test.cc.o" "gcc" "tests/CMakeFiles/om_test.dir/om/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgmlqdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
