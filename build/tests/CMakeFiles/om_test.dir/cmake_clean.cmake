file(REMOVE_RECURSE
  "CMakeFiles/om_test.dir/om/database_test.cc.o"
  "CMakeFiles/om_test.dir/om/database_test.cc.o.d"
  "CMakeFiles/om_test.dir/om/schema_test.cc.o"
  "CMakeFiles/om_test.dir/om/schema_test.cc.o.d"
  "CMakeFiles/om_test.dir/om/subtype_test.cc.o"
  "CMakeFiles/om_test.dir/om/subtype_test.cc.o.d"
  "CMakeFiles/om_test.dir/om/type_test.cc.o"
  "CMakeFiles/om_test.dir/om/type_test.cc.o.d"
  "CMakeFiles/om_test.dir/om/typecheck_test.cc.o"
  "CMakeFiles/om_test.dir/om/typecheck_test.cc.o.d"
  "CMakeFiles/om_test.dir/om/value_test.cc.o"
  "CMakeFiles/om_test.dir/om/value_test.cc.o.d"
  "om_test"
  "om_test.pdb"
  "om_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
