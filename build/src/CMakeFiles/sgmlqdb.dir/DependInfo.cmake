
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/compile.cc" "src/CMakeFiles/sgmlqdb.dir/algebra/compile.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/algebra/compile.cc.o.d"
  "/root/repo/src/algebra/ops.cc" "src/CMakeFiles/sgmlqdb.dir/algebra/ops.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/algebra/ops.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/sgmlqdb.dir/base/status.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/base/status.cc.o.d"
  "/root/repo/src/base/strutil.cc" "src/CMakeFiles/sgmlqdb.dir/base/strutil.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/base/strutil.cc.o.d"
  "/root/repo/src/calculus/eval.cc" "src/CMakeFiles/sgmlqdb.dir/calculus/eval.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/calculus/eval.cc.o.d"
  "/root/repo/src/calculus/formula.cc" "src/CMakeFiles/sgmlqdb.dir/calculus/formula.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/calculus/formula.cc.o.d"
  "/root/repo/src/calculus/terms.cc" "src/CMakeFiles/sgmlqdb.dir/calculus/terms.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/calculus/terms.cc.o.d"
  "/root/repo/src/core/document_store.cc" "src/CMakeFiles/sgmlqdb.dir/core/document_store.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/core/document_store.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/CMakeFiles/sgmlqdb.dir/corpus/generator.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/corpus/generator.cc.o.d"
  "/root/repo/src/mapping/exporter.cc" "src/CMakeFiles/sgmlqdb.dir/mapping/exporter.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/mapping/exporter.cc.o.d"
  "/root/repo/src/mapping/loader.cc" "src/CMakeFiles/sgmlqdb.dir/mapping/loader.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/mapping/loader.cc.o.d"
  "/root/repo/src/mapping/names.cc" "src/CMakeFiles/sgmlqdb.dir/mapping/names.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/mapping/names.cc.o.d"
  "/root/repo/src/mapping/schema_compiler.cc" "src/CMakeFiles/sgmlqdb.dir/mapping/schema_compiler.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/mapping/schema_compiler.cc.o.d"
  "/root/repo/src/om/database.cc" "src/CMakeFiles/sgmlqdb.dir/om/database.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/database.cc.o.d"
  "/root/repo/src/om/schema.cc" "src/CMakeFiles/sgmlqdb.dir/om/schema.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/schema.cc.o.d"
  "/root/repo/src/om/subtype.cc" "src/CMakeFiles/sgmlqdb.dir/om/subtype.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/subtype.cc.o.d"
  "/root/repo/src/om/type.cc" "src/CMakeFiles/sgmlqdb.dir/om/type.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/type.cc.o.d"
  "/root/repo/src/om/typecheck.cc" "src/CMakeFiles/sgmlqdb.dir/om/typecheck.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/typecheck.cc.o.d"
  "/root/repo/src/om/value.cc" "src/CMakeFiles/sgmlqdb.dir/om/value.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/om/value.cc.o.d"
  "/root/repo/src/oql/oql.cc" "src/CMakeFiles/sgmlqdb.dir/oql/oql.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/oql/oql.cc.o.d"
  "/root/repo/src/oql/parser.cc" "src/CMakeFiles/sgmlqdb.dir/oql/parser.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/oql/parser.cc.o.d"
  "/root/repo/src/oql/translate.cc" "src/CMakeFiles/sgmlqdb.dir/oql/translate.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/oql/translate.cc.o.d"
  "/root/repo/src/path/path.cc" "src/CMakeFiles/sgmlqdb.dir/path/path.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/path/path.cc.o.d"
  "/root/repo/src/path/schema_paths.cc" "src/CMakeFiles/sgmlqdb.dir/path/schema_paths.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/path/schema_paths.cc.o.d"
  "/root/repo/src/sgml/automaton.cc" "src/CMakeFiles/sgmlqdb.dir/sgml/automaton.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/sgml/automaton.cc.o.d"
  "/root/repo/src/sgml/content_model.cc" "src/CMakeFiles/sgmlqdb.dir/sgml/content_model.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/sgml/content_model.cc.o.d"
  "/root/repo/src/sgml/document.cc" "src/CMakeFiles/sgmlqdb.dir/sgml/document.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/sgml/document.cc.o.d"
  "/root/repo/src/sgml/dtd.cc" "src/CMakeFiles/sgmlqdb.dir/sgml/dtd.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/sgml/dtd.cc.o.d"
  "/root/repo/src/sgml/goldens.cc" "src/CMakeFiles/sgmlqdb.dir/sgml/goldens.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/sgml/goldens.cc.o.d"
  "/root/repo/src/text/index.cc" "src/CMakeFiles/sgmlqdb.dir/text/index.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/text/index.cc.o.d"
  "/root/repo/src/text/pattern.cc" "src/CMakeFiles/sgmlqdb.dir/text/pattern.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/text/pattern.cc.o.d"
  "/root/repo/src/text/regex.cc" "src/CMakeFiles/sgmlqdb.dir/text/regex.cc.o" "gcc" "src/CMakeFiles/sgmlqdb.dir/text/regex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
