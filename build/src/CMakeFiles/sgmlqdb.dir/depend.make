# Empty dependencies file for sgmlqdb.
# This may be replaced when dependencies are built.
