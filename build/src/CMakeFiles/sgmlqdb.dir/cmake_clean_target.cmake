file(REMOVE_RECURSE
  "libsgmlqdb.a"
)
