file(REMOVE_RECURSE
  "CMakeFiles/bench_text_index.dir/bench_text_index.cc.o"
  "CMakeFiles/bench_text_index.dir/bench_text_index.cc.o.d"
  "bench_text_index"
  "bench_text_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
