# Empty dependencies file for bench_union_types.
# This may be replaced when dependencies are built.
