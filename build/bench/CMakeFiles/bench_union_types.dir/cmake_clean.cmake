file(REMOVE_RECURSE
  "CMakeFiles/bench_union_types.dir/bench_union_types.cc.o"
  "CMakeFiles/bench_union_types.dir/bench_union_types.cc.o.d"
  "bench_union_types"
  "bench_union_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_union_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
