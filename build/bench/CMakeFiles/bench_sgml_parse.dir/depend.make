# Empty dependencies file for bench_sgml_parse.
# This may be replaced when dependencies are built.
