file(REMOVE_RECURSE
  "CMakeFiles/bench_sgml_parse.dir/bench_sgml_parse.cc.o"
  "CMakeFiles/bench_sgml_parse.dir/bench_sgml_parse.cc.o.d"
  "bench_sgml_parse"
  "bench_sgml_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgml_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
